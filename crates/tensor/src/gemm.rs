//! GEMM kernels for the inference hot path — float for the oracle, true-integer for
//! the quantized-native path.
//!
//! Three entry points cover every matrix product on the forward path:
//!
//! * [`gemm_f32`] — the float kernel behind [`Tensor::matmul`](crate::Tensor::matmul):
//!   `C(m×n) = A(m×k) × B(k×n)` over row-major slices, blocked over `k` and `n` so one
//!   panel of `B` stays cache-resident while every row of `A` sweeps it. This is the
//!   *oracle* kernel — single-threaded, bit-identical to the textbook triple loop.
//! * [`gemm_i8_requant`] — the quantized-native convolution kernel: an `i8` weight
//!   panel times an `i8` quantized-activation panel, every product accumulated in
//!   `i32` ([`gemm_i8`] is the accumulate-only version), with per-row requantization
//!   (scale multiply + bias add) in the epilogue. **No `f32` multiply exists in the
//!   inner loop** — the paper's integer-accumulator datapath.
//! * [`linear_i8_requant`] — the fully-connected layout (`x(rows×k) × W(m×k)ᵀ`):
//!   both operands walked along contiguous rows as an `i8×i8 → i32` dot product, with
//!   the same per-output-feature requantization epilogue.
//!
//! Activations enter the integer kernels through [`quantize_activations`], which uses
//! a **power-of-two** per-tensor scale so that float values that are already dyadic
//! rationals with enough headroom (integers in `[-127, 127]` in particular) quantize
//! *exactly* — the foundation of the integer-exact equivalence guarantee below.
//!
//! # Threading
//!
//! The two integer kernels split their M panels (or, when there are fewer rows than
//! workers, their N panels) across `std::thread::scope` workers — the same pattern
//! `radar-core`'s `detect_parallel` uses for layer shards. The count comes from the
//! caller; [`gemm_threads`] resolves the `RADAR_GEMM_THREADS` environment knob (and
//! an in-process override, [`set_gemm_threads`], used by the benchmarks). Every
//! output element is computed by exactly one worker with the same accumulation order
//! as the single-threaded kernel, and integer arithmetic is exact, so **threaded and
//! single-threaded runs are bit-identical** — pinned by the property tests in
//! `tests/gemm_equivalence.rs`.
//!
//! # Summation order and equivalence guarantees
//!
//! All kernels accumulate every output element in a fixed order independent of
//! blocking and threading. For [`gemm_f32`] that order is strictly ascending `k`
//! (bit-identical to the naive product). For the integer kernels the accumulator is
//! `i32` and integer addition is associative, so *any* order yields the same sums;
//! the requantization epilogue then performs at most three `f32` roundings per
//! output element (the `i32 → f32` widen, `* scale`, `+ bias`). Consequences, all
//! property-tested:
//!
//! * [`gemm_i8`] equals the widen-to-`i32` textbook reference exactly;
//! * with integer-exact weights (unit scale) and integer activations, the requantized
//!   output is **bit-identical** to the float oracle;
//! * under general scales each output is within one rounding step (±1 ulp per `f32`
//!   operation) of the real-valued product.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Rows of the right-hand operand per cache panel (the `k` blocking factor).
const BLOCK_K: usize = 256;

/// Columns of the right-hand operand per cache panel (the `n` blocking factor).
///
/// One float panel is at most `BLOCK_K * BLOCK_N` floats (256 KiB) — sized to sit in
/// a typical L2 while every row of the left operand streams over it. The `i8` panels
/// of the integer kernels are 4× smaller still.
const BLOCK_N: usize = 256;

/// Fixed width of the vectorizable inner tile of the integer kernels.
///
/// The hot loops process output columns (or dot-product lanes) in `chunks_exact`
/// tiles of this many elements, so the compiler sees a constant trip count with no
/// bounds checks and autovectorizes the widening `i8×i8 → i32` multiply-accumulate.
const LANES: usize = 16;

/// Maximum reduction depth `k` the integer kernels accept.
///
/// Every `i8×i8` product has magnitude at most `128 × 128 = 16384` (and fits in
/// `i16` — which is what lets the inner loop multiply in 16-bit lanes), so an `i32`
/// accumulator is safe for any `k` up to `i32::MAX / 16384` — the same headroom
/// argument the paper's integer-accumulator datapath makes. All kernels assert this
/// bound.
pub const MAX_GEMM_K: usize = (i32::MAX as usize) / (128 * 128);

/// In-process override for [`gemm_threads`]; `0` means "no override".
static GEMM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets (non-zero) or clears (zero) the in-process worker-count override consulted by
/// [`gemm_threads`], taking precedence over `RADAR_GEMM_THREADS`.
///
/// The benchmarks use this to sweep a thread axis within one process; everything
/// else should prefer the environment knob.
///
/// # Example
///
/// ```
/// radar_tensor::set_gemm_threads(2);
/// assert_eq!(radar_tensor::gemm_threads(), 2);
/// radar_tensor::set_gemm_threads(0); // back to the environment / default
/// ```
pub fn set_gemm_threads(threads: usize) {
    // relaxed: standalone config cell; readers need the value, not an ordering.
    GEMM_THREADS_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Worker-thread count for the integer GEMM kernels.
///
/// Resolution order: the [`set_gemm_threads`] override, then the
/// `RADAR_GEMM_THREADS` environment variable, then `1` (single-threaded — the
/// bit-identical fallback). The serving engine runs several inference workers of its
/// own, so GEMM-level threading is opt-in rather than defaulting to every core.
///
/// # Example
///
/// ```
/// // Without the env knob or an override the kernels run single-threaded.
/// radar_tensor::set_gemm_threads(0);
/// if std::env::var("RADAR_GEMM_THREADS").is_err() {
///     assert_eq!(radar_tensor::gemm_threads(), 1);
/// }
/// ```
pub fn gemm_threads() -> usize {
    // relaxed: standalone config cell; readers need the value, not an ordering.
    let over = GEMM_THREADS_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    // The env knob is a single worker count; the benchmarks also accept a
    // comma-separated sweep list (`RADAR_GEMM_THREADS=2,4`), which resolves here to
    // its maximum so the serving path runs at the widest swept width.
    std::env::var("RADAR_GEMM_THREADS")
        .ok()
        .and_then(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse::<usize>().ok())
                .max()
        })
        .map_or(1, |t| t.max(1))
}

/// Quantizes a float activation slice to `i8` with a **power-of-two** per-tensor
/// scale: `float ≈ i8 * scale`, `scale = 2^e` the smallest power of two with
/// `127 * scale >= max|x|`.
///
/// Rounding is round-half-away-from-zero ([`f32::round`]) with a clamp to
/// `[-127, 127]`. Because the scale is a power of two, any input that is a dyadic
/// rational with magnitude at most `127 * scale` is represented *exactly* — in
/// particular integer-valued activations in `[-127, 127]` round-trip bit-exactly,
/// which is what makes the integer pipeline's exact-equivalence guarantee testable.
///
/// An all-zero slice gets scale `1.0` so dequantization stays well defined.
///
/// # Example
///
/// ```
/// use radar_tensor::quantize_activations;
///
/// let (q, scale) = quantize_activations(&[0.5, -1.0, 2.0]);
/// assert_eq!(scale, 0.03125); // 2^-5: smallest power of two with 127*s >= 2.0
/// assert_eq!(q, vec![16, -32, 64]); // 0.5/s, -1.0/s, 2.0/s — all exact
/// assert!((q[0] as f32 * scale - 0.5).abs() == 0.0);
/// ```
///
/// # Panics
///
/// Panics if any activation is non-finite.
pub fn quantize_activations(x: &[f32]) -> (Vec<i8>, f32) {
    let max_abs = x.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    assert!(max_abs.is_finite(), "activations must be finite");
    if max_abs == 0.0 {
        return (vec![0; x.len()], 1.0);
    }
    // Smallest power of two with 127 * scale >= max_abs, found exactly in a few
    // halvings/doublings (no log2 rounding subtleties, stays out of denormals).
    let mut scale = 1.0f32;
    while 127.0 * scale < max_abs {
        scale *= 2.0;
    }
    while scale > f32::MIN_POSITIVE * 2.0 && 127.0 * (scale * 0.5) >= max_abs {
        scale *= 0.5;
    }
    let recip = 1.0 / scale; // exact: scale is a power of two
    let q = x
        .iter()
        .map(|&v| (v * recip).round().clamp(-127.0, 127.0) as i8)
        .collect();
    (q, scale)
}

/// `C(m×n) = A(m×k) × B(k×n)` over row-major slices, blocked for cache reuse.
///
/// The float oracle kernel: bit-identical to the naive `i-k-j` triple loop — each
/// output element accumulates its `k` products in ascending order; blocking only
/// reorders *which* elements are worked on when, never the additions into one
/// element. Zero elements of `A` are skipped (adding `0.0 * b` never changes a
/// finite sum, and activation matrices are often ReLU-sparse). Single-threaded by
/// design: this is the reference the threaded integer kernels are measured against.
///
/// # Example
///
/// ```
/// // (1×2) × (2×2): [1, 2] × [[1, 0], [0, 1]] = [1, 2]
/// let c = radar_tensor::gemm_f32(&[1.0, 2.0], &[1.0, 0.0, 0.0, 1.0], 1, 2, 2);
/// assert_eq!(c, vec![1.0, 2.0]);
/// ```
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*k`, `k*n`.
pub fn gemm_f32(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "lhs length {} != {m}x{k}", a.len());
    assert_eq!(b.len(), k * n, "rhs length {} != {k}x{n}", b.len());
    let mut out = vec![0.0f32; m * n];
    for jc in (0..n).step_by(BLOCK_N) {
        let nc = BLOCK_N.min(n - jc);
        for pc in (0..k).step_by(BLOCK_K) {
            let kc = BLOCK_K.min(k - pc);
            for i in 0..m {
                let a_panel = &a[i * k + pc..i * k + pc + kc];
                let out_row = &mut out[i * n + jc..i * n + jc + nc];
                for (p, &a_ip) in a_panel.iter().enumerate() {
                    if a_ip == 0.0 {
                        continue;
                    }
                    let b_row = &b[(pc + p) * n + jc..(pc + p) * n + jc + nc];
                    for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += a_ip * b_pj;
                    }
                }
            }
        }
    }
    out
}

/// `acc[j] += w * x[j]` over an `i8` row with a broadcast weight — the
/// vectorizable micro-kernel of [`gemm_i8`].
///
/// Deliberately the *plain* unit-stride zip loop: given contiguous slices and a
/// loop-invariant scalar, the loop vectorizer emits the widening integer SIMD we
/// want (sign-extend → 16-bit multiply → widen → 32-bit add) on its own. Hand
/// tiling this loop into fixed-width chunks made codegen strictly worse — see
/// `docs/KERNELS.md` for the asm-level story.
///
/// `inline(never)`: inlining lets the loop vectorizer fuse this with the caller's
/// loop over `k` and rebuild it around strided gathers/scatters across rows of `x`
/// — measured ~2.7× slower than the clean per-row form this boundary preserves.
#[inline(never)]
fn saxpy_i8(acc: &mut [i32], x: &[i8], w: i16) {
    debug_assert_eq!(acc.len(), x.len());
    // The product is formed in i16 — any i8×i8 product fits (|−128×−128| = 16384 <
    // 32767) — then widened to the i32 accumulator. The 16-bit multiply is what the
    // baseline x86-64 (SSE2) and aarch64 vector ISAs can express directly, so the
    // fixed-width tiles below compile to widening integer SIMD instead of scalar
    // 32-bit multiplies.
    for (a, &b) in acc.iter_mut().zip(x.iter()) {
        *a += (w * b as i16) as i32;
    }
}

/// Number of `k × n` panel blocks the `i8` GEMM core has executed — one increment
/// per `(BLOCK_K, BLOCK_N)` tile per [`gemm_i8_panel`] invocation. Gated by the
/// process-global observability level ([`radar_obs::set_global_level`]); at `Off`
/// each micro-kernel call pays one relaxed load and a branch.
pub static GEMM_PANELS: radar_obs::GlobalCounter = radar_obs::GlobalCounter::new();

/// Number of `i8` GEMM entry-point calls ([`gemm_i8`] / [`gemm_i8_requant`] /
/// [`linear_i8_requant`]), gated like [`GEMM_PANELS`].
pub static GEMM_CALLS: radar_obs::GlobalCounter = radar_obs::GlobalCounter::new();

/// Accumulates `W(rows×k) × X(k×n)` restricted to output columns
/// `[col0, col0 + ncols)` into `acc` (`rows × ncols`, row-major), blocked over `k`
/// and `n` panels. The shared core of the single-threaded, row-split and
/// column-split integer paths.
#[allow(clippy::too_many_arguments)] // a GEMM signature: operands, dims, panel window
fn gemm_i8_panel(
    w: &[i8],
    x: &[i8],
    rows: usize,
    k: usize,
    n: usize,
    col0: usize,
    ncols: usize,
    acc: &mut [i32],
) {
    debug_assert_eq!(w.len(), rows * k);
    debug_assert_eq!(acc.len(), rows * ncols);
    GEMM_PANELS.add((ncols.div_ceil(BLOCK_N) * k.div_ceil(BLOCK_K)) as u64);
    for jc in (0..ncols).step_by(BLOCK_N) {
        let nc = BLOCK_N.min(ncols - jc);
        for pc in (0..k).step_by(BLOCK_K) {
            let kc = BLOCK_K.min(k - pc);
            for i in 0..rows {
                let w_panel = &w[i * k + pc..i * k + pc + kc];
                let acc_row = &mut acc[i * ncols + jc..i * ncols + jc + nc];
                for (p, &w_ip) in w_panel.iter().enumerate() {
                    if w_ip == 0 {
                        // Zero weights — including groups a RADAR recovery zeroed —
                        // contribute nothing; integer zero-skip is exact.
                        continue;
                    }
                    let x_row = &x[(pc + p) * n + col0 + jc..(pc + p) * n + col0 + jc + nc];
                    saxpy_i8(acc_row, x_row, w_ip as i16);
                }
            }
        }
    }
}

/// `C(m×n) = W(m×k) × X(k×n)` with both operands `i8` and every product accumulated
/// in `i32` — the raw integer GEMM, before requantization.
///
/// This is the paper's accelerator datapath: two's-complement 8-bit values straight
/// from DRAM feed a widening multiplier with a 32-bit accumulator. Integer
/// arithmetic is exact, so the result equals the widen-to-`i32` textbook triple loop
/// bit for bit (property-tested in `tests/gemm_equivalence.rs`).
///
/// # Example
///
/// ```
/// // (2×2) × (2×2) identity: rows come back unchanged, exactly.
/// let c = radar_tensor::gemm_i8(&[3, -7, 127, 1], &[1, 0, 0, 1], 2, 2, 2);
/// assert_eq!(c, vec![3, -7, 127, 1]);
/// ```
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*k`, `k*n`, or if `k` exceeds
/// [`MAX_GEMM_K`] (the `i32` accumulator headroom bound).
pub fn gemm_i8(w: &[i8], x: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    assert_eq!(w.len(), m * k, "weight length {} != {m}x{k}", w.len());
    assert_eq!(x.len(), k * n, "rhs length {} != {k}x{n}", x.len());
    assert!(k <= MAX_GEMM_K, "k={k} overflows the i32 accumulator");
    GEMM_CALLS.add(1);
    let mut acc = vec![0i32; m * n];
    gemm_i8_panel(w, x, m, k, n, 0, n, &mut acc);
    acc
}

/// Validates a per-row requantization scale slice (`1` = uniform, or one scale per
/// output row) and returns a lookup closure.
fn row_scale(scales: &[f32], rows: usize) -> impl Fn(usize) -> f32 + '_ {
    assert!(
        scales.len() == 1 || scales.len() == rows,
        "requantization needs 1 or {rows} scales, got {}",
        scales.len()
    );
    move |i| {
        if scales.len() == 1 {
            scales[0]
        } else {
            scales[i]
        }
    }
}

/// Requantizes one accumulator row: `out[j] = acc[j] as f32 * scale + bias`.
///
/// At most three `f32` roundings per element — the `i32 → f32` widen (exact below
/// 2²⁴), the scale multiply, the bias add — the stated rounding contract of the
/// integer pipeline (`docs/KERNELS.md` §5), property-tested against an `f64`
/// reference in `tests/gemm_equivalence.rs`.
#[inline]
fn requant_row(acc: &[i32], out: &mut [f32], scale: f32, bias: f32) {
    for (o, &a) in out.iter_mut().zip(acc.iter()) {
        *o = a as f32 * scale + bias;
    }
}

/// Splits `total` into `parts` contiguous near-even chunk lengths.
fn chunk_lengths(total: usize, parts: usize) -> Vec<usize> {
    let parts = parts.clamp(1, total.max(1));
    let base = total / parts;
    let rem = total % parts;
    (0..parts)
        .map(|i| base + usize::from(i < rem))
        .filter(|&l| l > 0)
        .collect()
}

/// `C(m×n) = requantize(W(m×k) × X(k×n))` — the quantized-native convolution
/// kernel: `i8` weight panel × `i8` activation panel, `i32` accumulation
/// ([`gemm_i8`]), then a per-row epilogue `C[i][j] = acc * scales[i] + bias[i]`.
///
/// `scales` holds either one uniform scale or one per output row (per output
/// channel — the layout per-channel quantization will use); for the current
/// per-tensor scheme the caller folds `weight_scale * activation_scale` into it.
/// `bias` is an optional per-row addend, fused so no separate bias pass touches the
/// output again.
///
/// Work is split across `threads` scoped workers: over row panels when `m` is large
/// enough, otherwise over column panels. Every output element is produced by exactly
/// one worker with the same exact integer accumulation, so the result is
/// **bit-identical for every thread count** — see the module docs.
///
/// # Example
///
/// ```
/// use radar_tensor::gemm_i8_requant;
///
/// // (2×2) × (2×1), per-row scales [0.5, 2.0], bias [1.0, -1.0]:
/// // row 0: (1*10 + 2*100) * 0.5 + 1.0 = 106.0
/// // row 1: (3*10 + 4*100) * 2.0 - 1.0 = 859.0
/// let c = gemm_i8_requant(&[1, 2, 3, 4], &[10, 100], 2, 2, 1,
///                         &[0.5, 2.0], Some(&[1.0, -1.0]), 1);
/// assert_eq!(c, vec![106.0, 859.0]);
/// ```
///
/// # Panics
///
/// Panics if slice lengths do not match `m*k`/`k*n`, `k` exceeds [`MAX_GEMM_K`],
/// `scales` is neither 1 nor `m` long, `bias` (when given) is not `m` long, or
/// `threads` is zero.
#[allow(clippy::too_many_arguments)] // a GEMM signature: operands, dims, epilogue, threads
pub fn gemm_i8_requant(
    w: &[i8],
    x: &[i8],
    m: usize,
    k: usize,
    n: usize,
    scales: &[f32],
    bias: Option<&[f32]>,
    threads: usize,
) -> Vec<f32> {
    assert_eq!(w.len(), m * k, "weight length {} != {m}x{k}", w.len());
    assert_eq!(x.len(), k * n, "rhs length {} != {k}x{n}", x.len());
    assert!(k <= MAX_GEMM_K, "k={k} overflows the i32 accumulator");
    assert!(threads > 0, "thread count must be non-zero");
    GEMM_CALLS.add(1);
    let scale_of = row_scale(scales, m);
    if let Some(b) = bias {
        assert_eq!(b.len(), m, "bias length {} != {m} output rows", b.len());
    }
    let bias_of = |i: usize| bias.map_or(0.0, |b| b[i]);
    let mut out = vec![0.0f32; m * n];
    if m * n == 0 {
        return out;
    }

    if threads == 1 || (m < 2 && n < 2 * LANES) {
        let mut acc = vec![0i32; m * n];
        gemm_i8_panel(w, x, m, k, n, 0, n, &mut acc);
        for i in 0..m {
            requant_row(
                &acc[i * n..(i + 1) * n],
                &mut out[i * n..(i + 1) * n],
                scale_of(i),
                bias_of(i),
            );
        }
        return out;
    }

    if m >= threads {
        // Row split: each worker owns a contiguous block of output rows (a
        // contiguous region of `out`), accumulates it and requantizes in place.
        let lens = chunk_lengths(m, threads);
        std::thread::scope(|scope| {
            let mut rest = out.as_mut_slice();
            let mut row0 = 0usize;
            let scale_of = &scale_of;
            for rows_w in lens {
                let (mine, tail) = rest.split_at_mut(rows_w * n);
                rest = tail;
                let w_rows = &w[row0 * k..(row0 + rows_w) * k];
                let r0 = row0;
                scope.spawn(move || {
                    let mut acc = vec![0i32; rows_w * n];
                    gemm_i8_panel(w_rows, x, rows_w, k, n, 0, n, &mut acc);
                    for i in 0..rows_w {
                        requant_row(
                            &acc[i * n..(i + 1) * n],
                            &mut mine[i * n..(i + 1) * n],
                            scale_of(r0 + i),
                            bias_of(r0 + i),
                        );
                    }
                });
                row0 += rows_w;
            }
        });
    } else {
        // Column split (few output rows, e.g. a narrow conv layer): each worker
        // produces a requantized (m × ncols) block which is stitched afterwards.
        let lens = chunk_lengths(n, threads);
        let mut blocks: Vec<(usize, usize, Vec<f32>)> = Vec::with_capacity(lens.len());
        std::thread::scope(|scope| {
            let mut col0 = 0usize;
            let scale_of = &scale_of;
            let handles: Vec<_> = lens
                .into_iter()
                .map(|ncols| {
                    let c0 = col0;
                    col0 += ncols;
                    scope.spawn(move || {
                        let mut acc = vec![0i32; m * ncols];
                        gemm_i8_panel(w, x, m, k, n, c0, ncols, &mut acc);
                        let mut block = vec![0.0f32; m * ncols];
                        for i in 0..m {
                            requant_row(
                                &acc[i * ncols..(i + 1) * ncols],
                                &mut block[i * ncols..(i + 1) * ncols],
                                scale_of(i),
                                bias_of(i),
                            );
                        }
                        (c0, ncols, block)
                    })
                })
                .collect();
            blocks.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("gemm column worker panicked")),
            );
        });
        for (c0, ncols, block) in blocks {
            for i in 0..m {
                out[i * n + c0..i * n + c0 + ncols]
                    .copy_from_slice(&block[i * ncols..(i + 1) * ncols]);
            }
        }
    }
    out
}

/// `i8×i8 → i32` dot product over two contiguous rows, in [`LANES`]-wide tiles.
///
/// Uses one accumulator per lane summed at the end: integer addition is
/// associative, so the result is exactly the sequential sum while the tiles
/// autovectorize.
#[inline]
fn dot_i8(x: &[i8], w: &[i8]) -> i32 {
    debug_assert_eq!(x.len(), w.len());
    let mut lanes = [0i32; LANES];
    let mut x_tiles = x.chunks_exact(LANES);
    let mut w_tiles = w.chunks_exact(LANES);
    for (a, b) in (&mut x_tiles).zip(&mut w_tiles) {
        for l in 0..LANES {
            // i16 product (always fits), widened into the i32 lane accumulator —
            // the same SSE2/NEON-expressible shape as `saxpy_i8`.
            lanes[l] += (a[l] as i16 * b[l] as i16) as i32;
        }
    }
    let mut acc: i32 = lanes.iter().sum();
    for (&a, &b) in x_tiles.remainder().iter().zip(w_tiles.remainder()) {
        acc += a as i32 * b as i32;
    }
    acc
}

/// `C(rows×m) = requantize(X(rows×k) × W(m×k)ᵀ)` — the quantized-native
/// fully-connected kernel over quantized activations `X` and `i8` weights `W` in
/// their natural `(out, in)` storage order.
///
/// Each output element is an `i8×i8 → i32` dot product of an activation row with a
/// weight row (both contiguous — no transpose, no copy), requantized in the epilogue
/// as `C[i][j] = dot * scales[j] + bias[j]`. `scales`/`bias` are indexed by the
/// weight row `j` (the output feature), mirroring [`gemm_i8_requant`]'s
/// per-output-channel layout. Activation rows are split across `threads` scoped
/// workers; the result is bit-identical for every thread count (integer
/// accumulation is exact; see the module docs).
///
/// # Example
///
/// ```
/// use radar_tensor::linear_i8_requant;
///
/// // x(1×3) × W(2×3)ᵀ at uniform scale 1 with bias [0.5, -0.5]:
/// // y0 = 1*1 + 2*0 + 3*(-1) + 0.5 = -1.5 ; y1 = 1*2 + 2*1 + 3*0 - 0.5 = 3.5
/// let y = linear_i8_requant(&[1, 2, 3], &[1, 0, -1, 2, 1, 0], 1, 3, 2,
///                           &[1.0], Some(&[0.5, -0.5]), 1);
/// assert_eq!(y, vec![-1.5, 3.5]);
/// ```
///
/// # Panics
///
/// Panics if slice lengths do not match `rows*k`/`m*k`, `k` exceeds
/// [`MAX_GEMM_K`], `scales` is neither 1 nor `m` long, `bias` (when given) is not
/// `m` long, or `threads` is zero.
#[allow(clippy::too_many_arguments)] // a GEMM signature: operands, dims, epilogue, threads
pub fn linear_i8_requant(
    x: &[i8],
    w: &[i8],
    rows: usize,
    k: usize,
    m: usize,
    scales: &[f32],
    bias: Option<&[f32]>,
    threads: usize,
) -> Vec<f32> {
    assert_eq!(
        x.len(),
        rows * k,
        "activation length {} != {rows}x{k}",
        x.len()
    );
    assert_eq!(w.len(), m * k, "weight length {} != {m}x{k}", w.len());
    assert!(k <= MAX_GEMM_K, "k={k} overflows the i32 accumulator");
    assert!(threads > 0, "thread count must be non-zero");
    GEMM_CALLS.add(1);
    let scale_of = row_scale(scales, m);
    if let Some(b) = bias {
        assert_eq!(b.len(), m, "bias length {} != {m} output features", b.len());
    }
    let mut out = vec![0.0f32; rows * m];
    let kernel = |x_rows: &[i8], out_rows: &mut [f32]| {
        for (x_row, out_row) in x_rows
            .chunks_exact(k.max(1))
            .zip(out_rows.chunks_exact_mut(m))
        {
            for (j, o) in out_row.iter_mut().enumerate() {
                let dot = dot_i8(x_row, &w[j * k..(j + 1) * k]);
                *o = dot as f32 * scale_of(j) + bias.map_or(0.0, |b| b[j]);
            }
        }
    };
    if k == 0 || rows == 0 || m == 0 {
        for (i, o) in out.iter_mut().enumerate() {
            *o = bias.map_or(0.0, |b| b[i % m.max(1)]);
        }
        return out;
    }
    let threads = threads.min(rows);
    if threads <= 1 {
        kernel(x, &mut out);
        return out;
    }
    let lens = chunk_lengths(rows, threads);
    std::thread::scope(|scope| {
        let mut x_rest = x;
        let mut out_rest = out.as_mut_slice();
        let kernel = &kernel;
        for rows_w in lens {
            let (x_mine, x_tail) = x_rest.split_at(rows_w * k);
            let (out_mine, out_tail) = out_rest.split_at_mut(rows_w * m);
            x_rest = x_tail;
            out_rest = out_tail;
            scope.spawn(move || kernel(x_mine, out_mine));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The textbook float reference: `i-k-j` accumulation, no blocking.
    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a_ip = a[i * k + p];
                for j in 0..n {
                    out[i * n + j] += a_ip * b[p * n + j];
                }
            }
        }
        out
    }

    /// The widen-to-i32 integer reference.
    fn naive_i32(w: &[i8], x: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
        let mut out = vec![0i32; m * n];
        for i in 0..m {
            for p in 0..k {
                let w_ip = w[i * k + p] as i32;
                for j in 0..n {
                    out[i * n + j] += w_ip * x[p * n + j] as i32;
                }
            }
        }
        out
    }

    #[test]
    fn blocked_matches_naive_on_small_and_ragged_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 300, 9), (2, 513, 300)] {
            let a: Vec<f32> = (0..m * k).map(|v| ((v % 13) as f32 - 6.0) * 0.25).collect();
            let b: Vec<f32> = (0..k * n).map(|v| ((v % 7) as f32 - 3.0) * 0.5).collect();
            assert_eq!(
                gemm_f32(&a, &b, m, k, n),
                naive(&a, &b, m, k, n),
                "{m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn integer_gemm_matches_widened_reference() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 300, 9),
            (2, 513, 37),
            (5, 64, 260),
        ] {
            let w: Vec<i8> = (0..m * k)
                .map(|v| ((v * 7) % 255) as i32 as u8 as i8)
                .collect();
            let x: Vec<i8> = (0..k * n)
                .map(|v| ((v * 13 + 5) % 251) as u8 as i8)
                .collect();
            assert_eq!(
                gemm_i8(&w, &x, m, k, n),
                naive_i32(&w, &x, m, k, n),
                "{m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn requant_applies_per_row_scale_and_bias() {
        let w = [2i8, -3, 0, 1];
        let x = [1i8, 2, -1, 3];
        // W(2x2) × X(2x2): row 0 = [2*1-3*(-1), 2*2-3*3] = [5, -5]; row 1 = [-1, 3].
        let out = gemm_i8_requant(&w, &x, 2, 2, 2, &[0.5, 2.0], Some(&[1.0, -1.0]), 1);
        assert_eq!(out, vec![3.5, -1.5, -3.0, 5.0]);
    }

    #[test]
    fn uniform_scale_broadcasts() {
        let w = [1i8, 1, 1, 1];
        let x = [1i8, 1, 1, 1];
        let uniform = gemm_i8_requant(&w, &x, 2, 2, 2, &[0.25], None, 1);
        let per_row = gemm_i8_requant(&w, &x, 2, 2, 2, &[0.25, 0.25], None, 1);
        assert_eq!(uniform, per_row);
    }

    #[test]
    fn threaded_gemm_is_bit_identical_row_and_column_split() {
        // m=7 ≥ threads → row split; m=2 < threads → column split.
        for &(m, k, n) in &[(7usize, 130usize, 300usize), (2, 70, 513)] {
            let w: Vec<i8> = (0..m * k).map(|v| ((v * 11) % 255) as u8 as i8).collect();
            let x: Vec<i8> = (0..k * n)
                .map(|v| ((v * 3 + 1) % 253) as u8 as i8)
                .collect();
            let scales: Vec<f32> = (0..m).map(|i| 0.01 + i as f32 * 0.003).collect();
            let bias: Vec<f32> = (0..m).map(|i| i as f32 - 1.5).collect();
            let single = gemm_i8_requant(&w, &x, m, k, n, &scales, Some(&bias), 1);
            for threads in [2usize, 3, 4, 5] {
                let multi = gemm_i8_requant(&w, &x, m, k, n, &scales, Some(&bias), threads);
                assert_eq!(single, multi, "{m}x{k}x{n} @ {threads} threads");
            }
        }
    }

    #[test]
    fn linear_matches_transposed_integer_reference() {
        let (rows, k, m) = (4, 130, 3);
        let x: Vec<i8> = (0..rows * k).map(|v| ((v * 9) % 251) as u8 as i8).collect();
        let w: Vec<i8> = (0..m * k)
            .map(|v| ((v * 5 + 2) % 255) as u8 as i8)
            .collect();
        // Reference via gemm_i8 on transposed weights.
        let mut wt = vec![0i8; k * m];
        for j in 0..m {
            for p in 0..k {
                wt[p * m + j] = w[j * k + p];
            }
        }
        let reference = naive_i32(&x, &wt, rows, k, m);
        let got = linear_i8_requant(&x, &w, rows, k, m, &[1.0], None, 1);
        let want: Vec<f32> = reference.iter().map(|&v| v as f32).collect();
        assert_eq!(got, want);
        for threads in [2usize, 3, 7] {
            assert_eq!(
                linear_i8_requant(&x, &w, rows, k, m, &[1.0], None, threads),
                want,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn quantize_activations_is_exact_on_integers() {
        let x = [3.0f32, -100.0, 0.0, 64.0, -1.0];
        let (q, scale) = quantize_activations(&x);
        for (&orig, &qq) in x.iter().zip(q.iter()) {
            assert_eq!(qq as f32 * scale, orig, "integer input must round-trip");
        }
    }

    #[test]
    fn quantize_activations_uses_power_of_two_scales() {
        for max in [0.3f32, 1.0, 2.5, 100.0, 127.0, 1000.0] {
            let (_, scale) = quantize_activations(&[max, -max * 0.5]);
            assert!(scale > 0.0);
            // A power of two has an exact reciprocal and log2.
            assert_eq!(
                scale.log2().fract(),
                0.0,
                "scale {scale} not a power of two"
            );
            assert!(127.0 * scale >= max, "range must cover max abs");
            assert!(127.0 * scale * 0.5 < max || scale <= f32::MIN_POSITIVE * 2.0);
        }
    }

    #[test]
    fn quantize_activations_handles_zero_slice() {
        let (q, scale) = quantize_activations(&[0.0, 0.0]);
        assert_eq!(q, vec![0, 0]);
        assert_eq!(scale, 1.0);
    }

    #[test]
    fn gemm_threads_honors_override() {
        set_gemm_threads(3);
        assert_eq!(gemm_threads(), 3);
        set_gemm_threads(0);
    }

    #[test]
    #[should_panic(expected = "lhs length")]
    fn mismatched_lengths_panic() {
        gemm_f32(&[1.0], &[1.0, 2.0], 1, 2, 1);
    }

    #[test]
    #[should_panic(expected = "requantization needs")]
    fn wrong_scale_count_panics() {
        gemm_i8_requant(&[1, 1], &[1], 2, 1, 1, &[1.0, 1.0, 1.0], None, 1);
    }
}
