//! im2col / col2im lowering used to express 2-D convolutions as matrix products.

use crate::Tensor;

/// Geometry of a 2-D convolution: input/kernel sizes, stride and padding.
///
/// Inputs are laid out `(N, C, H, W)`, kernels `(C_out, C_in, K, K)`.
///
/// # Example
///
/// ```
/// use radar_tensor::Conv2dGeometry;
///
/// let g = Conv2dGeometry::new(3, 3, 1, 1); // 3x3 kernel, stride 1, pad 1
/// assert_eq!(g.output_size(32, 32), (32, 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride (same in both spatial dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Creates a new geometry description.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or either kernel dimension is zero.
    pub fn new(kernel_h: usize, kernel_w: usize, stride: usize, padding: usize) -> Self {
        assert!(stride > 0, "stride must be non-zero");
        assert!(
            kernel_h > 0 && kernel_w > 0,
            "kernel dimensions must be non-zero"
        );
        Conv2dGeometry {
            kernel_h,
            kernel_w,
            stride,
            padding,
        }
    }

    /// Output spatial size `(H_out, W_out)` for an input of size `(h, w)`.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        let h_out = (h + 2 * self.padding - self.kernel_h) / self.stride + 1;
        let w_out = (w + 2 * self.padding - self.kernel_w) / self.stride + 1;
        (h_out, w_out)
    }
}

/// Unfolds an `(N, C, H, W)` input into a `(C*K*K, N*H_out*W_out)` matrix so a
/// convolution becomes `weights(C_out, C*K*K) × im2col(input)`.
///
/// # Panics
///
/// Panics if `input` is not 4-D.
pub fn im2col(input: &Tensor, geom: &Conv2dGeometry) -> Tensor {
    assert_eq!(
        input.shape().rank(),
        4,
        "im2col expects (N, C, H, W), got {}",
        input.shape()
    );
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (h_out, w_out) = geom.output_size(h, w);
    let rows = c * geom.kernel_h * geom.kernel_w;
    let cols = n * h_out * w_out;
    let mut out = vec![0.0f32; rows * cols];
    let data = input.data();

    for ni in 0..n {
        for ci in 0..c {
            for kh in 0..geom.kernel_h {
                for kw in 0..geom.kernel_w {
                    let row = ci * geom.kernel_h * geom.kernel_w + kh * geom.kernel_w + kw;
                    for oh in 0..h_out {
                        let ih = (oh * geom.stride + kh) as isize - geom.padding as isize;
                        for ow in 0..w_out {
                            let iw = (ow * geom.stride + kw) as isize - geom.padding as isize;
                            let col = ni * h_out * w_out + oh * w_out + ow;
                            let v = if ih >= 0 && iw >= 0 && (ih as usize) < h && (iw as usize) < w
                            {
                                data[((ni * c + ci) * h + ih as usize) * w + iw as usize]
                            } else {
                                0.0
                            };
                            out[row * cols + col] = v;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols]).expect("im2col output shape is consistent by construction")
}

/// Unfolds an already-quantized `(N, C, H, W)` input (raw row-major `i8` slice) into
/// a `(C*K*K, N*H_out*W_out)` `i8` matrix — the integer-pipeline twin of [`im2col`],
/// feeding `gemm_i8_requant` directly.
///
/// Quantizing *before* unfolding is what makes the native convolution cheap: the
/// rounding pass touches each input element once instead of once per kernel
/// position, and the unfolded matrix occupies a quarter of the float version's
/// bytes. Padding contributes quantized zero (exactly representable at any scale),
/// so `im2col_i8(quantize(x)) == quantize(im2col(x))` element-for-element whenever
/// the same scale is used.
///
/// # Example
///
/// ```
/// use radar_tensor::{im2col_i8, Conv2dGeometry};
///
/// // 1x1 kernel, stride 1: im2col is a reshape, so the values come back unchanged.
/// let g = Conv2dGeometry::new(1, 1, 1, 0);
/// let cols = im2col_i8(&[1, -2, 3, -4], 1, 1, 2, 2, &g);
/// assert_eq!(cols, vec![1, -2, 3, -4]);
/// ```
///
/// # Panics
///
/// Panics if `data.len()` does not equal `n*c*h*w`.
pub fn im2col_i8(
    data: &[i8],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    geom: &Conv2dGeometry,
) -> Vec<i8> {
    assert_eq!(
        data.len(),
        n * c * h * w,
        "im2col_i8 input length {} != {n}x{c}x{h}x{w}",
        data.len()
    );
    let (h_out, w_out) = geom.output_size(h, w);
    let rows = c * geom.kernel_h * geom.kernel_w;
    let cols = n * h_out * w_out;
    let mut out = vec![0i8; rows * cols];

    for ni in 0..n {
        for ci in 0..c {
            for kh in 0..geom.kernel_h {
                for kw in 0..geom.kernel_w {
                    let row = ci * geom.kernel_h * geom.kernel_w + kh * geom.kernel_w + kw;
                    for oh in 0..h_out {
                        let ih = (oh * geom.stride + kh) as isize - geom.padding as isize;
                        for ow in 0..w_out {
                            let iw = (ow * geom.stride + kw) as isize - geom.padding as isize;
                            let col = ni * h_out * w_out + oh * w_out + ow;
                            let v = if ih >= 0 && iw >= 0 && (ih as usize) < h && (iw as usize) < w
                            {
                                data[((ni * c + ci) * h + ih as usize) * w + iw as usize]
                            } else {
                                0
                            };
                            out[row * cols + col] = v;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Folds a `(C*K*K, N*H_out*W_out)` matrix back into an `(N, C, H, W)` tensor, summing
/// overlapping contributions. This is the adjoint of [`im2col`] and is used for the
/// gradient with respect to the convolution input.
///
/// # Panics
///
/// Panics if `cols` is not 2-D or its dimensions are inconsistent with the geometry.
pub fn col2im(
    cols: &Tensor,
    geom: &Conv2dGeometry,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
) -> Tensor {
    assert_eq!(
        cols.shape().rank(),
        2,
        "col2im expects a 2-D matrix, got {}",
        cols.shape()
    );
    let (h_out, w_out) = geom.output_size(h, w);
    let rows = c * geom.kernel_h * geom.kernel_w;
    let ncols = n * h_out * w_out;
    assert_eq!(
        cols.dims(),
        &[rows, ncols],
        "col2im input dims {:?} inconsistent with geometry (expected {:?})",
        cols.dims(),
        [rows, ncols]
    );

    let mut out = vec![0.0f32; n * c * h * w];
    let data = cols.data();
    for ni in 0..n {
        for ci in 0..c {
            for kh in 0..geom.kernel_h {
                for kw in 0..geom.kernel_w {
                    let row = ci * geom.kernel_h * geom.kernel_w + kh * geom.kernel_w + kw;
                    for oh in 0..h_out {
                        let ih = (oh * geom.stride + kh) as isize - geom.padding as isize;
                        for ow in 0..w_out {
                            let iw = (ow * geom.stride + kw) as isize - geom.padding as isize;
                            if ih >= 0 && iw >= 0 && (ih as usize) < h && (iw as usize) < w {
                                let col = ni * h_out * w_out + oh * w_out + ow;
                                out[((ni * c + ci) * h + ih as usize) * w + iw as usize] +=
                                    data[row * ncols + col];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, h, w]).expect("col2im output shape is consistent by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_size_matches_formula() {
        let g = Conv2dGeometry::new(3, 3, 1, 1);
        assert_eq!(g.output_size(32, 32), (32, 32));
        let g = Conv2dGeometry::new(3, 3, 2, 1);
        assert_eq!(g.output_size(32, 32), (16, 16));
        let g = Conv2dGeometry::new(1, 1, 1, 0);
        assert_eq!(g.output_size(8, 8), (8, 8));
    }

    #[test]
    #[should_panic(expected = "stride must be non-zero")]
    fn zero_stride_panics() {
        Conv2dGeometry::new(3, 3, 0, 1);
    }

    #[test]
    fn im2col_identity_kernel_copies_input() {
        // 1x1 kernel, stride 1, no padding: im2col is just a reshape of the input.
        let input = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let g = Conv2dGeometry::new(1, 1, 1, 0);
        let cols = im2col(&input, &g);
        assert_eq!(cols.dims(), &[1, 16]);
        assert_eq!(cols.data(), input.data());
    }

    #[test]
    fn im2col_3x3_on_small_input_matches_manual_patch() {
        // 3x3 input, 3x3 kernel, stride 1, no padding => single column = whole input.
        let input = Tensor::from_vec((1..=9).map(|x| x as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let g = Conv2dGeometry::new(3, 3, 1, 0);
        let cols = im2col(&input, &g);
        assert_eq!(cols.dims(), &[9, 1]);
        assert_eq!(cols.data(), input.data());
    }

    #[test]
    fn conv_via_im2col_matches_direct_computation() {
        // Direct 2-D convolution of a known input with a known kernel.
        let input = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let kernel = Tensor::from_vec(vec![1.0, 0.0, 0.0, -1.0], &[1, 1, 2, 2]).unwrap();
        let g = Conv2dGeometry::new(2, 2, 1, 0);
        let cols = im2col(&input, &g);
        let w = kernel.reshape(&[1, 4]).unwrap();
        let out = w.matmul(&cols); // (1, 9)
                                   // Manually: out[oh][ow] = x[oh][ow] - x[oh+1][ow+1] = -5 for every position.
        assert_eq!(out.dims(), &[1, 9]);
        assert!(out.data().iter().all(|&v| v == -5.0));
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish data (adjoint property).
        let x = Tensor::from_vec(
            (0..2 * 3 * 5 * 5).map(|v| (v % 7) as f32 - 3.0).collect(),
            &[2, 3, 5, 5],
        )
        .unwrap();
        let g = Conv2dGeometry::new(3, 3, 2, 1);
        let cols = im2col(&x, &g);
        let y = cols.map(|v| v * 0.5 + 1.0);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let back = col2im(&y, &g, 2, 3, 5, 5);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn im2col_padding_produces_zeros_at_border() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let g = Conv2dGeometry::new(3, 3, 1, 1);
        let cols = im2col(&input, &g);
        // Top-left output position, kernel element (0,0) looks at padded area -> 0.
        assert_eq!(cols.get(&[0, 0]), 0.0);
        // Centre kernel element (1,1) at output (0,0) looks at input (0,0) -> 1.
        assert_eq!(cols.get(&[4, 0]), 1.0);
    }
}
