use rand::distributions::Distribution;
use rand::Rng;

use crate::{Shape, TensorError};

/// An owned, contiguous, row-major `f32` tensor.
///
/// # Example
///
/// ```
/// use radar_tensor::Tensor;
///
/// # fn main() -> Result<(), radar_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.get(&[1, 2]), 6.0);
/// assert_eq!(t.sum(), 21.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Creates a square identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a data buffer and shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal the number
    /// of elements implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a tensor with elements drawn i.i.d. from a uniform distribution on
    /// `[low, high)`.
    pub fn rand_uniform<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], low: f32, high: f32) -> Self {
        let shape = Shape::new(dims);
        let dist = rand::distributions::Uniform::new(low, high);
        let data = (0..shape.numel()).map(|_| dist.sample(rng)).collect();
        Tensor { data, shape }
    }

    /// Creates a tensor with elements drawn i.i.d. from a normal distribution
    /// `N(mean, std²)` using a Box–Muller transform (no external distribution crate).
    pub fn rand_normal<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], mean: f32, std: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Tensor { data, shape }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Immutable view of the underlying row-major data buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any component is out of bounds.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any component is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self, TensorError> {
        let new_shape = Shape::new(dims);
        if new_shape.numel() != self.numel() {
            return Err(TensorError::ReshapeMismatch {
                from: self.numel(),
                to: new_shape.numel(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape: new_shape,
        })
    }

    /// Applies a function to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Self {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies a function to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two tensors elementwise with a binary function.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch in elementwise op: {} vs {}",
            self.shape, other.shape
        );
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements. Returns `0.0` for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element. Returns negative infinity for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Maximum absolute value of any element. Returns `0.0` for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |acc, &x| acc.max(x.abs()))
    }

    /// Index of the maximum element in a flat view (first occurrence wins).
    ///
    /// Returns `None` for an empty tensor.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor(shape={}, numel={})", self.shape, self.numel())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[2, 3]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[4]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[2], 2.5).data().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.get(&[r, c]), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 0], 7.0);
        assert_eq!(t.get(&[1, 0]), 7.0);
        assert_eq!(t.get(&[0, 1]), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -5.0, 3.0], &[3]).unwrap();
        assert_eq!(t.sum(), -1.0);
        assert!((t.mean() + 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.max_abs(), 5.0);
        assert_eq!(t.argmax(), Some(2));
    }

    #[test]
    fn argmax_empty_is_none() {
        let t = Tensor::from_vec(vec![], &[0]).unwrap();
        assert_eq!(t.argmax(), None);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.map(|x| x * 2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.zip_map(&b, |x, y| x + y).data(), &[4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_map_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        a.zip_map(&b, |x, y| x + y);
    }

    #[test]
    fn rand_normal_statistics_are_plausible() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Tensor::rand_normal(&mut rng, &[10_000], 1.0, 2.0);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / 10_000.0;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn rand_uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::rand_uniform(&mut rng, &[1000], -0.5, 0.5);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }
}
