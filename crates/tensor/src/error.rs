use std::error::Error;
use std::fmt;

/// Errors produced when constructing or reshaping tensors.
///
/// Elementwise and linear-algebra operations panic on shape mismatch instead (the
/// mismatch is a programming error, not a recoverable condition); constructors that take
/// user-provided buffers return this error so callers can validate external data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the number of elements implied by the
    /// requested shape.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A reshape was requested to a shape with a different number of elements.
    ReshapeMismatch {
        /// Element count of the existing tensor.
        from: usize,
        /// Element count of the requested shape.
        to: usize,
    },
    /// A shape with a zero-sized dimension was provided where it is not allowed.
    EmptyDimension,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape ({expected} elements)"
                )
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(
                    f,
                    "cannot reshape tensor with {from} elements into shape with {to} elements"
                )
            }
            TensorError::EmptyDimension => write!(f, "shape contains a zero-sized dimension"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch {
            expected: 4,
            actual: 3,
        };
        assert_eq!(
            e.to_string(),
            "data length 3 does not match shape (4 elements)"
        );
    }

    #[test]
    fn display_reshape_mismatch() {
        let e = TensorError::ReshapeMismatch { from: 6, to: 8 };
        assert!(e.to_string().contains("6 elements"));
        assert!(e.to_string().contains("8 elements"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
