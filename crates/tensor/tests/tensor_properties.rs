//! Property-based tests of the tensor substrate: linear-algebra identities and the
//! im2col/col2im adjoint relation that the convolution backward pass relies on.

use proptest::prelude::*;
use radar_tensor::{col2im, im2col, Conv2dGeometry, Tensor};

fn small_matrix() -> impl Strategy<Value = (Vec<f32>, usize, usize)> {
    (1usize..9, 1usize..9)
        .prop_flat_map(|(m, n)| (prop::collection::vec(-4.0f32..4.0, m * n), Just(m), Just(n)))
}

proptest! {
    /// `A · I = A` and `I · A = A`.
    #[test]
    fn matmul_identity((data, m, n) in small_matrix()) {
        let a = Tensor::from_vec(data, &[m, n]).expect("shape matches");
        let right = a.matmul(&Tensor::eye(n));
        let left = Tensor::eye(m).matmul(&a);
        for (x, y) in right.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        for (x, y) in left.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Transposition is an involution and `(A·B)ᵀ = Bᵀ·Aᵀ`.
    #[test]
    fn transpose_properties(
        (a_data, m, k) in small_matrix(),
        b_cols in 1usize..8,
        b_seed in prop::collection::vec(-2.0f32..2.0, 1..800),
    ) {
        let a = Tensor::from_vec(a_data, &[m, k]).expect("shape matches");
        prop_assert_eq!(a.transpose2d().transpose2d(), a.clone());

        let b_data: Vec<f32> = (0..k * b_cols).map(|i| b_seed[i % b_seed.len()]).collect();
        let b = Tensor::from_vec(b_data, &[k, b_cols]).expect("shape matches");
        let lhs = a.matmul(&b).transpose2d();
        let rhs = b.transpose2d().matmul(&a.transpose2d());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Matrix multiplication distributes over addition: `A·(B + C) = A·B + A·C`.
    #[test]
    fn matmul_distributes_over_addition(
        (a_data, m, k) in small_matrix(),
        extra in prop::collection::vec(-2.0f32..2.0, 1..200),
    ) {
        let n = 3usize;
        let a = Tensor::from_vec(a_data, &[m, k]).expect("shape matches");
        let b_data: Vec<f32> = (0..k * n).map(|i| extra[i % extra.len()]).collect();
        let c_data: Vec<f32> = (0..k * n).map(|i| extra[(i * 7 + 1) % extra.len()]).collect();
        let b = Tensor::from_vec(b_data, &[k, n]).expect("shape matches");
        let c = Tensor::from_vec(c_data, &[k, n]).expect("shape matches");
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// `<im2col(x), y> == <x, col2im(y)>`: col2im is the exact adjoint of im2col, which
    /// is what makes the convolution weight/input gradients correct.
    #[test]
    fn im2col_col2im_are_adjoint(
        n in 1usize..3,
        c in 1usize..3,
        h in 3usize..8,
        w in 3usize..8,
        kernel in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in prop::collection::vec(-2.0f32..2.0, 16..64),
    ) {
        prop_assume!(h + 2 * padding >= kernel && w + 2 * padding >= kernel);
        let geom = Conv2dGeometry::new(kernel, kernel, stride, padding);
        let x_data: Vec<f32> = (0..n * c * h * w).map(|i| seed[i % seed.len()]).collect();
        let x = Tensor::from_vec(x_data, &[n, c, h, w]).expect("shape matches");
        let cols = im2col(&x, &geom);
        let y = cols.map(|v| 0.5 * v + 0.25);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let back = col2im(&y, &geom, n, c, h, w);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(&a, &b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }
}
