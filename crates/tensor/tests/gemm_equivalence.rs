//! Property tests pinning the blocked GEMM kernels to their naive references, over
//! ragged shapes that straddle the blocking factors (non-multiples of the `k`/`n`
//! panel sizes included). `gemm_f32` must be *bit-identical* to the textbook triple
//! loop — the kernel only reorders which elements are worked on, never the additions
//! into one element — and `gemm_i8_dequant` must be bit-identical to
//! dequantize-then-multiply whenever the scale is exact (unit scale here; the general
//! argmax-level agreement is pinned in `radar-quant`'s `native_equivalence` tests).

use proptest::prelude::*;
use radar_tensor::{gemm_f32, gemm_i8_dequant, linear_i8};

/// The textbook reference: `i-k-j` accumulation, no blocking, no zero skipping.
fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let a_ip = a[i * k + p];
            for j in 0..n {
                out[i * n + j] += a_ip * b[p * n + j];
            }
        }
    }
    out
}

/// A `k`/`n` extent deliberately straddling the 256-wide panels: each draw lands
/// below one block, around exactly one block, or around two blocks.
fn edge_extent() -> impl Strategy<Value = usize> {
    (0usize..3, 0usize..14).prop_map(|(band, off)| match band {
        0 => 1 + off,
        1 => 250 + off,
        _ => 505 + off,
    })
}

/// Small `m`, ragged `k`/`n`.
fn ragged_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..8, edge_extent(), edge_extent())
}

/// An `i8` weight drawn over the full quantized range (including 0, the value a RADAR
/// zero-out recovery writes).
fn weight() -> impl Strategy<Value = i8> {
    (-127i32..128).prop_map(|v| v as i8)
}

proptest! {
    /// Blocked float GEMM is bit-identical to the naive triple loop.
    #[test]
    fn gemm_blocked_equals_naive_matmul(
        (m, k, n) in ragged_dims(),
        seed in prop::collection::vec(-3.0f32..3.0, 64..65),
    ) {
        let a: Vec<f32> = (0..m * k).map(|i| seed[i % seed.len()] * 0.5).collect();
        let b: Vec<f32> = (0..k * n).map(|i| seed[(i * 31 + 7) % seed.len()]).collect();
        prop_assert_eq!(gemm_f32(&a, &b, m, k, n), naive(&a, &b, m, k, n));
    }

    /// At unit scale the fused dequantize-in-kernel product is bit-identical to
    /// widening the weights to `f32` first (integer-exact inputs → exact equality).
    #[test]
    fn fused_dequant_gemm_is_exact_at_unit_scale(
        (m, k, n) in ragged_dims(),
        wseed in prop::collection::vec(weight(), 64..65),
        bseed in prop::collection::vec(-3.0f32..3.0, 64..65),
    ) {
        let w: Vec<i8> = (0..m * k).map(|i| wseed[i % wseed.len()]).collect();
        let b: Vec<f32> = (0..k * n).map(|i| bseed[(i * 13 + 5) % bseed.len()]).collect();
        let wf: Vec<f32> = w.iter().map(|&q| q as f32).collect();
        prop_assert_eq!(gemm_i8_dequant(&w, &b, m, k, n, 1.0), naive(&wf, &b, m, k, n));
    }

    /// The fully-connected kernel matches transpose-then-multiply on the widened
    /// weights (the float path of `Linear::forward`), again exactly at unit scale.
    #[test]
    fn linear_i8_equals_transpose_then_matmul(
        (rows, k, m) in (1usize..6, 1usize..300, 1usize..10),
        wseed in prop::collection::vec(weight(), 64..65),
        xseed in prop::collection::vec(-2.0f32..2.0, 64..65),
    ) {
        let x: Vec<f32> = (0..rows * k).map(|i| xseed[i % xseed.len()]).collect();
        let w: Vec<i8> = (0..m * k).map(|i| wseed[(i * 3 + 1) % wseed.len()]).collect();
        let mut wt = vec![0.0f32; k * m];
        for j in 0..m {
            for p in 0..k {
                wt[p * m + j] = w[j * k + p] as f32;
            }
        }
        prop_assert_eq!(linear_i8(&x, &w, rows, k, m, 1.0), naive(&x, &wt, rows, k, m));
    }

    /// A general (inexact) scale still matches dequantize-then-multiply to within a
    /// tight relative bound: the only divergence is where the scale rounding lands.
    #[test]
    fn fused_dequant_gemm_tracks_float_oracle_under_general_scale(
        (m, k, n) in ragged_dims(),
        wseed in prop::collection::vec(weight(), 64..65),
        bseed in prop::collection::vec(-3.0f32..3.0, 64..65),
        scale in 0.001f32..0.1,
    ) {
        let w: Vec<i8> = (0..m * k).map(|i| wseed[i % wseed.len()]).collect();
        let b: Vec<f32> = (0..k * n).map(|i| bseed[(i * 13 + 5) % bseed.len()]).collect();
        let wf: Vec<f32> = w.iter().map(|&q| q as f32 * scale).collect();
        let fused = gemm_i8_dequant(&w, &b, m, k, n, scale);
        let oracle = naive(&wf, &b, m, k, n);
        for (x, y) in fused.iter().zip(oracle.iter()) {
            prop_assert!(
                (x - y).abs() <= 1e-4 * (1.0 + y.abs()),
                "fused {} vs oracle {}", x, y
            );
        }
    }
}
