//! Property tests pinning the GEMM kernels to their naive references, over ragged
//! shapes that straddle the blocking factors (non-multiples of the `k`/`n` panel
//! sizes included).
//!
//! Contracts proved here:
//! - `gemm_f32` is *bit-identical* to the textbook triple loop — the kernel only
//!   reorders which elements are worked on, never the additions into one element.
//! - `gemm_i8` is *integer-exact*: equal to widening every operand to `i32` and
//!   running the textbook loop. Integer addition is associative, so blocking and
//!   zero-skipping cannot change a single bit.
//! - `gemm_i8_requant` / `linear_i8_requant` threaded output is *bit-identical* to
//!   single-threaded for any thread count (each output element is computed by exactly
//!   one worker, from the same exact integer accumulator).
//! - The requantization epilogue tracks the infinitely-precise `acc·scale + bias` to
//!   within its three `f32` roundings (widen, multiply, add).
//! - End to end: integer weights at unit scale × integer-valued activations (which
//!   quantize exactly at a power-of-two scale) make the whole integer pipeline
//!   bit-identical to the float oracle. The general argmax-level agreement is pinned
//!   in `radar-quant`'s `native_equivalence` tests.

use proptest::prelude::*;
use radar_tensor::{gemm_f32, gemm_i8, gemm_i8_requant, linear_i8_requant, quantize_activations};

/// The textbook f32 reference: `i-k-j` accumulation, no blocking, no zero skipping.
fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let a_ip = a[i * k + p];
            for j in 0..n {
                out[i * n + j] += a_ip * b[p * n + j];
            }
        }
    }
    out
}

/// The widen-to-i32 reference for the integer kernels: every product formed after
/// sign-extending both operands, accumulated in `i32`, no blocking.
fn naive_i32(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        for p in 0..k {
            let a_ip = a[i * k + p] as i32;
            for j in 0..n {
                out[i * n + j] += a_ip * b[p * n + j] as i32;
            }
        }
    }
    out
}

/// A `k`/`n` extent deliberately straddling the 256-wide panels: each draw lands
/// below one block, around exactly one block, or around two blocks.
fn edge_extent() -> impl Strategy<Value = usize> {
    (0usize..3, 0usize..14).prop_map(|(band, off)| match band {
        0 => 1 + off,
        1 => 250 + off,
        _ => 505 + off,
    })
}

/// Small `m`, ragged `k`/`n`.
fn ragged_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..8, edge_extent(), edge_extent())
}

/// An `i8` weight drawn over the full quantized range (including 0, the value a RADAR
/// zero-out recovery writes, and -128, the value a bit flip can mint).
fn weight() -> impl Strategy<Value = i8> {
    (-128i32..128).prop_map(|v| v as i8)
}

proptest! {
    /// Blocked float GEMM is bit-identical to the naive triple loop.
    #[test]
    fn gemm_blocked_equals_naive_matmul(
        (m, k, n) in ragged_dims(),
        seed in prop::collection::vec(-3.0f32..3.0, 64..65),
    ) {
        let a: Vec<f32> = (0..m * k).map(|i| seed[i % seed.len()] * 0.5).collect();
        let b: Vec<f32> = (0..k * n).map(|i| seed[(i * 31 + 7) % seed.len()]).collect();
        prop_assert_eq!(gemm_f32(&a, &b, m, k, n), naive(&a, &b, m, k, n));
    }

    /// The blocked, tiled, zero-skipping integer kernel is integer-exact: bit-equal
    /// to the widen-to-i32 textbook loop over ragged panel-straddling shapes.
    #[test]
    fn gemm_i8_equals_widen_to_i32_reference(
        (m, k, n) in ragged_dims(),
        wseed in prop::collection::vec(weight(), 64..65),
        xseed in prop::collection::vec(weight(), 64..65),
    ) {
        let w: Vec<i8> = (0..m * k).map(|i| wseed[i % wseed.len()]).collect();
        let x: Vec<i8> = (0..k * n).map(|i| xseed[(i * 13 + 5) % xseed.len()]).collect();
        prop_assert_eq!(gemm_i8(&w, &x, m, k, n), naive_i32(&w, &x, m, k, n));
    }

    /// Threaded requantizing GEMM is bit-identical to single-threaded for any thread
    /// count — covering both the row-split (`m >= threads`) and the column-split
    /// (`m < threads`) path, per-row scales and fused bias included.
    #[test]
    fn threaded_gemm_requant_is_bit_identical_to_single_threaded(
        (m, k, n) in ragged_dims(),
        threads in 2usize..6,
        wseed in prop::collection::vec(weight(), 64..65),
        xseed in prop::collection::vec(weight(), 64..65),
        sseed in prop::collection::vec(0.001f32..0.75, 8..9),
    ) {
        let w: Vec<i8> = (0..m * k).map(|i| wseed[i % wseed.len()]).collect();
        let x: Vec<i8> = (0..k * n).map(|i| xseed[(i * 13 + 5) % xseed.len()]).collect();
        let scales: Vec<f32> = (0..m).map(|i| sseed[i % sseed.len()]).collect();
        let bias: Vec<f32> = (0..m).map(|i| sseed[(i * 3 + 1) % sseed.len()] - 0.4).collect();
        let single = gemm_i8_requant(&w, &x, m, k, n, &scales, Some(&bias), 1);
        let multi = gemm_i8_requant(&w, &x, m, k, n, &scales, Some(&bias), threads);
        prop_assert_eq!(single, multi);
    }

    /// Threaded fully-connected kernel is bit-identical to single-threaded over
    /// ragged depths, including the `rows < threads` remainder handling.
    #[test]
    fn threaded_linear_requant_is_bit_identical_to_single_threaded(
        (rows, k, m) in (1usize..6, 1usize..300, 1usize..10),
        threads in 2usize..6,
        wseed in prop::collection::vec(weight(), 64..65),
        xseed in prop::collection::vec(weight(), 64..65),
    ) {
        let x: Vec<i8> = (0..rows * k).map(|i| xseed[i % xseed.len()]).collect();
        let w: Vec<i8> = (0..m * k).map(|i| wseed[(i * 3 + 1) % wseed.len()]).collect();
        let scale = [0.03125f32];
        let single = linear_i8_requant(&x, &w, rows, k, m, &scale, None, 1);
        let multi = linear_i8_requant(&x, &w, rows, k, m, &scale, None, threads);
        prop_assert_eq!(single, multi);
    }

    /// The requantization epilogue tracks the infinitely-precise `acc·scale + bias`
    /// (computed in f64) to within its three f32 roundings: widen the i32
    /// accumulator, multiply by the folded scale, add the bias.
    #[test]
    fn requantization_tracks_exact_epilogue_within_rounding(
        (m, k, n) in ragged_dims(),
        wseed in prop::collection::vec(weight(), 64..65),
        xseed in prop::collection::vec(weight(), 64..65),
        scale in 0.0001f32..0.1,
        bias0 in -2.0f32..2.0,
    ) {
        let w: Vec<i8> = (0..m * k).map(|i| wseed[i % wseed.len()]).collect();
        let x: Vec<i8> = (0..k * n).map(|i| xseed[(i * 13 + 5) % xseed.len()]).collect();
        let bias: Vec<f32> = (0..m).map(|i| bias0 + i as f32 * 0.125).collect();
        let acc = naive_i32(&w, &x, m, k, n);
        let out = gemm_i8_requant(&w, &x, m, k, n, &[scale], Some(&bias), 1);
        for i in 0..m {
            for j in 0..n {
                let exact = acc[i * n + j] as f64 * scale as f64 + bias[i] as f64;
                let got = out[i * n + j] as f64;
                // Three roundings, each ≤ half an ulp of its intermediate: bound by
                // 3 ulp of the result magnitude (plus the bias magnitude, in case of
                // cancellation in the final add).
                let ulp = f32::EPSILON as f64
                    * (acc[i * n + j].unsigned_abs() as f64 * scale as f64
                        + bias[i].abs() as f64
                        + f32::MIN_POSITIVE as f64);
                prop_assert!(
                    (got - exact).abs() <= 3.0 * ulp,
                    "requant {} vs exact {} (bound {})", got, exact, 3.0 * ulp
                );
            }
        }
    }

    /// End to end: integer weights at unit scale and integer-valued activations make
    /// the full pipeline — `quantize_activations` → `gemm_i8_requant` with the folded
    /// scale — bit-identical to the float oracle. Power-of-two activation scales
    /// quantize integer values exactly, and every intermediate stays below the f32
    /// mantissa limit, so both paths compute the same exact integers.
    #[test]
    fn integer_pipeline_is_bit_identical_to_float_oracle(
        (m, k, n) in ragged_dims(),
        wseed in prop::collection::vec(-127i32..128, 64..65),
        xseed in prop::collection::vec(-5i32..6, 64..65),
    ) {
        let w: Vec<i8> = (0..m * k).map(|i| wseed[i % wseed.len()] as i8).collect();
        let x: Vec<f32> = (0..k * n).map(|i| xseed[(i * 13 + 5) % xseed.len()] as f32).collect();
        let (xq, a_scale) = quantize_activations(&x);
        let native = gemm_i8_requant(&w, &xq, m, k, n, &[a_scale], None, 1);
        let wf: Vec<f32> = w.iter().map(|&q| q as f32).collect();
        prop_assert_eq!(native, naive(&wf, &x, m, k, n));
    }
}
