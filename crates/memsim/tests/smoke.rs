//! Smoke test: weights load into the DRAM model, a rowhammer mount flips exactly the
//! profiled bits, and fetching propagates the corruption back into the model.

use radar_attack::{AttackProfile, BitFlip, FlipDirection};
use radar_memsim::{DramGeometry, RowhammerInjector, WeightDram};
use radar_nn::{resnet20, ResNetConfig};
use radar_quant::{QuantizedModel, MSB};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model() -> QuantizedModel {
    QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))))
}

fn msb_profile(model: &QuantizedModel) -> AttackProfile {
    let weight_before = model.layer(0).weights().value(3);
    AttackProfile {
        flips: vec![BitFlip {
            layer: 0,
            weight: 3,
            bit: MSB,
            direction: if weight_before >= 0 {
                FlipDirection::ZeroToOne
            } else {
                FlipDirection::OneToZero
            },
            weight_before,
        }],
        loss_before: 0.0,
        loss_after: 0.0,
    }
}

#[test]
fn dram_image_matches_model_weights() {
    let m = model();
    let dram = WeightDram::load(&m, DramGeometry::default());
    assert_eq!(dram.weight_bytes(), m.total_weights());
    let offset = dram.offset_of(0, 3);
    assert_eq!(dram.read(offset) as i8, m.layer(0).weights().value(3));
}

#[test]
fn mounted_flip_lands_in_dram_and_fetches_into_the_model() {
    let mut m = model();
    let original = m.layer(0).weights().value(3);
    let mut dram = WeightDram::load(&m, DramGeometry::default());
    let profile = msb_profile(&m);
    let mut rng = StdRng::seed_from_u64(7);

    let report = RowhammerInjector::new(1.0).mount_and_fetch(&mut dram, &mut m, &profile, &mut rng);
    assert_eq!(report.flips_landed, 1);
    assert_eq!(report.flips_missed, 0);
    assert_eq!(report.rows_hammered, 1);

    let corrupted = m.layer(0).weights().value(3);
    assert_eq!(
        corrupted,
        (original as u8 ^ 0x80) as i8,
        "the MSB flip must propagate from DRAM into the quantized model"
    );
}

#[test]
fn unreliable_injector_misses_deterministically() {
    let m = model();
    let mut dram = WeightDram::load(&m, DramGeometry::default());
    let profile = msb_profile(&m);
    let mut rng = StdRng::seed_from_u64(7);

    let report = RowhammerInjector::new(0.0).mount(&mut dram, &profile, &mut rng);
    assert_eq!(report.flips_landed, 0);
    assert_eq!(report.flips_missed, 1);
    let offset = dram.offset_of(0, 3);
    assert_eq!(dram.read(offset) as i8, m.layer(0).weights().value(3));
}
