//! DRAM device model and rowhammer-style run-time fault injection.
//!
//! The RADAR threat model assumes the DNN's quantized weights live in DRAM main memory
//! (they are too large for on-chip SRAM) and that the attacker flips the PBFA-identified
//! bits there at run time via rowhammer. This crate provides:
//!
//! * [`WeightDram`] — a bank/row/column DRAM image of a model's weight bytes, with
//!   address translation, bit-precise corruption and a `fetch_into` path modelling the
//!   DRAM → on-chip transfer that precedes RADAR's check. `fetch_into_verified`
//!   embeds the check *in* the fetch: each layer is streamed through the protection's
//!   precomputed verification plan the moment its bytes arrive.
//! * [`RowhammerInjector`] — mounts an [`AttackProfile`](radar_attack::AttackProfile)
//!   onto the stored image, optionally with a per-flip success probability.
//! * [`AttackTimeline`] / [`MountEvent`] — scripted mid-service strikes at
//!   batch-granular timeline offsets, so an online serving run replays the same attack
//!   deterministically; repeated mounts aggregate via [`MountReport::merge`].
//!
//! # Example
//!
//! ```
//! use radar_memsim::{DramGeometry, RowhammerInjector, WeightDram};
//! use radar_nn::{resnet20, ResNetConfig};
//! use radar_quant::QuantizedModel;
//!
//! let model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(10))));
//! let dram = WeightDram::load(&model, DramGeometry::default());
//! let addr = dram.address_of(dram.offset_of(0, 0));
//! assert!(addr.bank < dram.geometry().banks);
//! let _injector = RowhammerInjector::default();
//! ```

mod dram;
mod rowhammer;
mod timeline;

pub use dram::{DramAddress, DramGeometry, WeightDram};
pub use rowhammer::{MountReport, RowhammerInjector};
pub use timeline::{AttackTimeline, MountEvent};

// Campaign workers own a `WeightDram` per scenario cell and share injector configs
// across scoped threads; enforce `Send + Sync` at compile time so the parallel engine
// cannot be broken by a non-thread-safe field sneaking into these types.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<WeightDram>();
    assert_send_sync::<DramGeometry>();
    assert_send_sync::<DramAddress>();
    assert_send_sync::<RowhammerInjector>();
    assert_send_sync::<MountReport>();
    assert_send_sync::<MountEvent>();
    assert_send_sync::<AttackTimeline>();
};
