use radar_attack::AttackProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dram::WeightDram;
use crate::rowhammer::{MountReport, RowhammerInjector};

/// One scripted rowhammer strike on a serving timeline: mount `profile` through
/// `injector` once the serving engine's logical clock reaches `at_batch` dispatched
/// batches.
///
/// The logical clock is deliberately batch-granular rather than wall-clock so attacked
/// serving runs replay deterministically: "the attacker strikes while batch 20 is being
/// formed" means the same thing on every machine and thread schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct MountEvent {
    /// Batch index (dispatched-batch count) at which the strike fires.
    pub at_batch: usize,
    /// The injector (per-flip success probability) used for this strike.
    pub injector: RowhammerInjector,
    /// The vulnerable-bit profile to mount.
    pub profile: AttackProfile,
    /// Seed of the strike's private RNG, so mounts with `success_rate < 1` land the
    /// same subset of flips on every replay.
    pub seed: u64,
}

impl MountEvent {
    /// Mounts the strike onto `dram` with its own seeded RNG.
    pub fn mount(&self, dram: &mut WeightDram) -> MountReport {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.injector.mount(dram, &self.profile, &mut rng)
    }
}

/// A scripted attack timeline: [`MountEvent`]s ordered by batch offset, drained as the
/// serving engine's logical clock advances.
///
/// # Example
///
/// ```
/// use radar_attack::AttackProfile;
/// use radar_memsim::{AttackTimeline, MountEvent, RowhammerInjector};
///
/// let timeline = AttackTimeline::new(vec![MountEvent {
///     at_batch: 4,
///     injector: RowhammerInjector::default(),
///     profile: AttackProfile::default(),
///     seed: 7,
/// }]);
/// assert_eq!(timeline.batch_offsets(), vec![4]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttackTimeline {
    events: Vec<MountEvent>,
    next: usize,
}

impl AttackTimeline {
    /// Builds a timeline, sorting the events by `at_batch` (ties keep their order).
    pub fn new(mut events: Vec<MountEvent>) -> Self {
        events.sort_by_key(|e| e.at_batch);
        AttackTimeline { events, next: 0 }
    }

    /// A timeline with no strikes (the clean-service scenario).
    pub fn empty() -> Self {
        AttackTimeline::default()
    }

    /// Total number of scripted strikes.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline scripts no strikes at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Strikes not yet drained by [`pop_due`](Self::pop_due).
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }

    /// The sorted batch offsets of every strike — the schedule a batcher consults to
    /// know *when* to hand control to the adversary, without owning the events.
    pub fn batch_offsets(&self) -> Vec<usize> {
        self.events.iter().map(|e| e.at_batch).collect()
    }

    /// Pops the next strike whose `at_batch` is `<= batch`, or `None` when the logical
    /// clock has not reached the next strike yet. Call in a loop to drain multiple
    /// strikes scheduled at the same offset.
    pub fn pop_due(&mut self, batch: usize) -> Option<&MountEvent> {
        if self.next < self.events.len() && self.events[self.next].at_batch <= batch {
            let event = &self.events[self.next];
            self.next += 1;
            Some(event)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_attack::{BitFlip, FlipDirection};
    use radar_nn::{resnet20, ResNetConfig};
    use radar_quant::{QuantizedModel, MSB};

    fn event(at_batch: usize, layer: usize, weight: usize) -> MountEvent {
        MountEvent {
            at_batch,
            injector: RowhammerInjector::default(),
            profile: AttackProfile {
                flips: vec![BitFlip {
                    layer,
                    weight,
                    bit: MSB,
                    direction: FlipDirection::ZeroToOne,
                    weight_before: 0,
                }],
                loss_before: 0.0,
                loss_after: 0.0,
            },
            seed: 0xA77AC4,
        }
    }

    #[test]
    fn events_are_sorted_and_drained_in_offset_order() {
        let mut timeline =
            AttackTimeline::new(vec![event(8, 1, 0), event(2, 0, 0), event(5, 2, 0)]);
        assert_eq!(timeline.batch_offsets(), vec![2, 5, 8]);
        assert_eq!(timeline.len(), 3);
        assert!(timeline.pop_due(1).is_none());
        assert_eq!(timeline.pop_due(2).unwrap().at_batch, 2);
        // Batch 6 drains the offset-5 strike but not the offset-8 one.
        assert_eq!(timeline.pop_due(6).unwrap().at_batch, 5);
        assert!(timeline.pop_due(6).is_none());
        assert_eq!(timeline.remaining(), 1);
        assert_eq!(timeline.pop_due(100).unwrap().at_batch, 8);
        assert!(timeline.pop_due(100).is_none());
        assert_eq!(timeline.remaining(), 0);
    }

    #[test]
    fn mount_is_deterministic_per_event_seed() {
        let model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
        let mut ev = event(0, 0, 3);
        ev.injector = RowhammerInjector::new(0.5);
        let mut a = crate::WeightDram::load(&model, crate::DramGeometry::default());
        let mut b = a.clone();
        let ra = ev.mount(&mut a);
        let rb = ev.mount(&mut b);
        assert_eq!(ra, rb);
        assert_eq!(a, b, "same seed must land the same flip subset");
    }

    #[test]
    fn empty_timeline_never_fires() {
        let mut timeline = AttackTimeline::empty();
        assert!(timeline.is_empty());
        assert!(timeline.pop_due(0).is_none());
        assert!(timeline.pop_due(usize::MAX).is_none());
    }
}
