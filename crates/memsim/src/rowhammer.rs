use radar_attack::AttackProfile;
use radar_quant::QuantizedModel;
use rand::Rng;

use crate::dram::WeightDram;

/// Outcome of mounting one attack profile through the DRAM model.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MountReport {
    /// Number of bit flips that landed (the aggressor pattern succeeded).
    pub flips_landed: usize,
    /// Number of bit flips that failed to land (cell not susceptible this time).
    pub flips_missed: usize,
    /// Distinct DRAM rows the attacker had to hammer.
    pub rows_hammered: usize,
}

/// A rowhammer-style fault injector that mounts a PBFA "vulnerable bit profile" onto
/// the weight bytes stored in the DRAM model at run time (step ② of the paper's threat
/// model).
///
/// Real rowhammer does not flip every targeted cell on every attempt; `success_rate`
/// models that (1.0 reproduces the paper's assumption that the attacker keeps hammering
/// until the profile is fully mounted).
///
/// # Example
///
/// ```
/// use radar_memsim::RowhammerInjector;
///
/// let injector = RowhammerInjector::new(1.0);
/// assert_eq!(injector.success_rate(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowhammerInjector {
    success_rate: f64,
}

impl RowhammerInjector {
    /// Creates an injector with the given per-flip success probability in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `success_rate` is not within `[0, 1]`.
    pub fn new(success_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&success_rate),
            "success rate must be within [0, 1]"
        );
        RowhammerInjector { success_rate }
    }

    /// The per-flip success probability.
    pub fn success_rate(&self) -> f64 {
        self.success_rate
    }

    /// Mounts `profile` onto the stored weight image.
    pub fn mount<R: Rng + ?Sized>(
        &self,
        dram: &mut WeightDram,
        profile: &AttackProfile,
        rng: &mut R,
    ) -> MountReport {
        let mut report = MountReport::default();
        let mut rows = std::collections::HashSet::new();
        for flip in &profile.flips {
            let offset = dram.offset_of(flip.layer, flip.weight);
            let addr = dram.address_of(offset);
            rows.insert((addr.bank, addr.row));
            if self.success_rate >= 1.0 || rng.gen_bool(self.success_rate) {
                dram.flip_bit(offset, flip.bit);
                report.flips_landed += 1;
            } else {
                report.flips_missed += 1;
            }
        }
        report.rows_hammered = rows.len();
        report
    }

    /// Convenience for the full run-time pipeline: mount the profile in DRAM, then
    /// fetch the (now corrupted) weights into the model, as an inference pass would.
    pub fn mount_and_fetch<R: Rng + ?Sized>(
        &self,
        dram: &mut WeightDram,
        model: &mut QuantizedModel,
        profile: &AttackProfile,
        rng: &mut R,
    ) -> MountReport {
        let report = self.mount(dram, profile, rng);
        dram.fetch_into(model);
        report
    }
}

impl Default for RowhammerInjector {
    fn default() -> Self {
        RowhammerInjector::new(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramGeometry;
    use radar_attack::{BitFlip, FlipDirection};
    use radar_nn::{resnet20, ResNetConfig};
    use radar_quant::MSB;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (QuantizedModel, WeightDram, AttackProfile) {
        let model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
        let dram = WeightDram::load(&model, DramGeometry::default());
        let profile = AttackProfile {
            flips: vec![
                BitFlip {
                    layer: 0,
                    weight: 3,
                    bit: MSB,
                    direction: FlipDirection::ZeroToOne,
                    weight_before: 0,
                },
                BitFlip {
                    layer: 5,
                    weight: 11,
                    bit: MSB,
                    direction: FlipDirection::ZeroToOne,
                    weight_before: 0,
                },
            ],
            loss_before: 0.0,
            loss_after: 0.0,
        };
        (model, dram, profile)
    }

    #[test]
    fn full_success_rate_lands_every_flip() {
        let (mut model, mut dram, profile) = setup();
        let before = model.snapshot();
        let mut rng = StdRng::seed_from_u64(0);
        let report =
            RowhammerInjector::default().mount_and_fetch(&mut dram, &mut model, &profile, &mut rng);
        assert_eq!(report.flips_landed, 2);
        assert_eq!(report.flips_missed, 0);
        assert!(report.rows_hammered >= 1);
        assert_ne!(model.snapshot(), before);
    }

    #[test]
    fn zero_success_rate_lands_nothing() {
        let (mut model, mut dram, profile) = setup();
        let before = model.snapshot();
        let mut rng = StdRng::seed_from_u64(0);
        let report =
            RowhammerInjector::new(0.0).mount_and_fetch(&mut dram, &mut model, &profile, &mut rng);
        assert_eq!(report.flips_landed, 0);
        assert_eq!(report.flips_missed, 2);
        assert_eq!(model.snapshot(), before);
    }

    #[test]
    fn mounted_flips_match_direct_model_flips() {
        let (mut model, mut dram, profile) = setup();
        let mut reference = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
        profile.apply(&mut reference);
        let mut rng = StdRng::seed_from_u64(0);
        RowhammerInjector::default().mount_and_fetch(&mut dram, &mut model, &profile, &mut rng);
        assert_eq!(model.snapshot(), reference.snapshot());
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn invalid_success_rate_panics() {
        RowhammerInjector::new(1.5);
    }
}
