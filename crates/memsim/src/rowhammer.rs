use radar_attack::AttackProfile;
use radar_quant::QuantizedModel;
use rand::Rng;

use crate::dram::WeightDram;

/// Outcome of mounting one attack profile through the DRAM model.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MountReport {
    /// Number of bit flips that landed (the aggressor pattern succeeded).
    pub flips_landed: usize,
    /// Number of bit flips that failed to land (cell not susceptible this time).
    pub flips_missed: usize,
    /// Distinct DRAM rows the attacker had to hammer.
    pub rows_hammered: usize,
}

impl MountReport {
    /// Total flips the mount attempted (landed plus missed).
    pub fn flips_attempted(&self) -> usize {
        self.flips_landed + self.flips_missed
    }

    /// Folds another mount's counts into this one, so repeated timeline mounts
    /// aggregate instead of each strike's report being dropped.
    ///
    /// All three counters are summed. `rows_hammered` is deduplicated only *within*
    /// each mount (the report does not carry the row set), so the merged value is an
    /// upper bound when two strikes hammer overlapping rows.
    pub fn merge(&mut self, other: &MountReport) {
        self.flips_landed += other.flips_landed;
        self.flips_missed += other.flips_missed;
        self.rows_hammered += other.rows_hammered;
    }

    /// Consuming form of [`merge`](Self::merge) for fold-style accumulation over a
    /// timeline of mounts; `#[must_use]` because dropping the return value silently
    /// discards the accumulated counts.
    #[must_use]
    pub fn merged(mut self, other: &MountReport) -> MountReport {
        self.merge(other);
        self
    }
}

/// A rowhammer-style fault injector that mounts a PBFA "vulnerable bit profile" onto
/// the weight bytes stored in the DRAM model at run time (step ② of the paper's threat
/// model).
///
/// Real rowhammer does not flip every targeted cell on every attempt; `success_rate`
/// models that (1.0 reproduces the paper's assumption that the attacker keeps hammering
/// until the profile is fully mounted).
///
/// # Example
///
/// ```
/// use radar_memsim::RowhammerInjector;
///
/// let injector = RowhammerInjector::new(1.0);
/// assert_eq!(injector.success_rate(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowhammerInjector {
    success_rate: f64,
}

impl RowhammerInjector {
    /// Creates an injector with the given per-flip success probability in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `success_rate` is not within `[0, 1]`.
    pub fn new(success_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&success_rate),
            "success rate must be within [0, 1]"
        );
        RowhammerInjector { success_rate }
    }

    /// The per-flip success probability.
    pub fn success_rate(&self) -> f64 {
        self.success_rate
    }

    /// Mounts `profile` onto the stored weight image.
    pub fn mount<R: Rng + ?Sized>(
        &self,
        dram: &mut WeightDram,
        profile: &AttackProfile,
        rng: &mut R,
    ) -> MountReport {
        let mut report = MountReport::default();
        let mut rows = std::collections::HashSet::new();
        for flip in &profile.flips {
            let offset = dram.offset_of(flip.layer, flip.weight);
            let addr = dram.address_of(offset);
            rows.insert((addr.bank, addr.row));
            if self.success_rate >= 1.0 || rng.gen_bool(self.success_rate) {
                dram.flip_bit(offset, flip.bit);
                report.flips_landed += 1;
            } else {
                report.flips_missed += 1;
            }
        }
        report.rows_hammered = rows.len();
        report
    }

    /// Convenience for the full run-time pipeline: mount the profile in DRAM, then
    /// fetch the (now corrupted) weights into the model, as an inference pass would.
    pub fn mount_and_fetch<R: Rng + ?Sized>(
        &self,
        dram: &mut WeightDram,
        model: &mut QuantizedModel,
        profile: &AttackProfile,
        rng: &mut R,
    ) -> MountReport {
        let report = self.mount(dram, profile, rng);
        dram.fetch_into(model);
        report
    }
}

impl Default for RowhammerInjector {
    fn default() -> Self {
        RowhammerInjector::new(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramGeometry;
    use radar_attack::{BitFlip, FlipDirection};
    use radar_nn::{resnet20, ResNetConfig};
    use radar_quant::MSB;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (QuantizedModel, WeightDram, AttackProfile) {
        let model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
        let dram = WeightDram::load(&model, DramGeometry::default());
        let profile = AttackProfile {
            flips: vec![
                BitFlip {
                    layer: 0,
                    weight: 3,
                    bit: MSB,
                    direction: FlipDirection::ZeroToOne,
                    weight_before: 0,
                },
                BitFlip {
                    layer: 5,
                    weight: 11,
                    bit: MSB,
                    direction: FlipDirection::ZeroToOne,
                    weight_before: 0,
                },
            ],
            loss_before: 0.0,
            loss_after: 0.0,
        };
        (model, dram, profile)
    }

    #[test]
    fn full_success_rate_lands_every_flip() {
        let (mut model, mut dram, profile) = setup();
        let before = model.snapshot();
        let mut rng = StdRng::seed_from_u64(0);
        let report =
            RowhammerInjector::default().mount_and_fetch(&mut dram, &mut model, &profile, &mut rng);
        assert_eq!(report.flips_landed, 2);
        assert_eq!(report.flips_missed, 0);
        assert!(report.rows_hammered >= 1);
        assert_ne!(model.snapshot(), before);
    }

    #[test]
    fn zero_success_rate_lands_nothing() {
        let (mut model, mut dram, profile) = setup();
        let before = model.snapshot();
        let mut rng = StdRng::seed_from_u64(0);
        let report =
            RowhammerInjector::new(0.0).mount_and_fetch(&mut dram, &mut model, &profile, &mut rng);
        assert_eq!(report.flips_landed, 0);
        assert_eq!(report.flips_missed, 2);
        assert_eq!(model.snapshot(), before);
    }

    #[test]
    fn mounted_flips_match_direct_model_flips() {
        let (mut model, mut dram, profile) = setup();
        let mut reference = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
        profile.apply(&mut reference);
        let mut rng = StdRng::seed_from_u64(0);
        RowhammerInjector::default().mount_and_fetch(&mut dram, &mut model, &profile, &mut rng);
        assert_eq!(model.snapshot(), reference.snapshot());
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn invalid_success_rate_panics() {
        RowhammerInjector::new(1.5);
    }

    #[test]
    fn merge_sums_all_counters() {
        let mut a = MountReport {
            flips_landed: 3,
            flips_missed: 1,
            rows_hammered: 2,
        };
        let b = MountReport {
            flips_landed: 2,
            flips_missed: 4,
            rows_hammered: 5,
        };
        a.merge(&b);
        assert_eq!(a.flips_landed, 5);
        assert_eq!(a.flips_missed, 5);
        assert_eq!(a.rows_hammered, 7);
        assert_eq!(a.flips_attempted(), 10);
        // Merging the empty report is the identity.
        let before = a.clone();
        a.merge(&MountReport::default());
        assert_eq!(a, before);
        // The consuming helper agrees with the in-place form.
        let folded = MountReport::default().merged(&before).merged(&b);
        assert_eq!(folded, before.clone().merged(&b));
    }

    #[test]
    fn repeated_mounts_aggregate_via_merge() {
        let (mut model, mut dram, profile) = setup();
        let injector = RowhammerInjector::default();
        let mut rng = StdRng::seed_from_u64(7);
        let mut total = MountReport::default();
        for _ in 0..3 {
            total.merge(&injector.mount_and_fetch(&mut dram, &mut model, &profile, &mut rng));
        }
        // Every strike lands both flips at success rate 1.0 (re-flipping toggles the
        // same bits back and forth; the counters still accumulate per attempt).
        assert_eq!(total.flips_landed, 6);
        assert_eq!(total.flips_missed, 0);
        assert!(total.rows_hammered >= 3);
    }
}
