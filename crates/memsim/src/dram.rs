use radar_core::{DetectionReport, RadarProtection};
use radar_quant::QuantizedModel;

/// Geometry of the modelled DRAM device.
///
/// The defaults describe a single-rank DDR-style device: 8 banks of 32768 rows with
/// 8 KB per row — plenty to hold the weight footprints used in this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    /// Number of banks.
    pub banks: usize,
    /// Rows per bank.
    pub rows_per_bank: usize,
    /// Bytes per row (the rowhammer blast radius).
    pub row_bytes: usize,
}

impl Default for DramGeometry {
    fn default() -> Self {
        DramGeometry {
            banks: 8,
            rows_per_bank: 32_768,
            row_bytes: 8 * 1024,
        }
    }
}

impl DramGeometry {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.banks * self.rows_per_bank * self.row_bytes
    }
}

/// A physical location of one byte in DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramAddress {
    /// Bank index.
    pub bank: usize,
    /// Row index within the bank.
    pub row: usize,
    /// Column (byte offset) within the row.
    pub column: usize,
}

/// A DRAM main-memory model holding the quantized weight image of a model.
///
/// The weight bytes of every quantized layer are laid out contiguously, row-major per
/// layer, starting at a base address — exactly the arrangement the paper's threat model
/// assumes when rowhammer corrupts "the weights stored in DRAM main memory". The model
/// supports address translation (byte offset ↔ bank/row/column), loading layers back
/// into the [`QuantizedModel`] (the DRAM → cache fetch) and bit-precise corruption.
///
/// # Example
///
/// ```
/// use radar_memsim::{DramGeometry, WeightDram};
/// use radar_nn::{resnet20, ResNetConfig};
/// use radar_quant::QuantizedModel;
///
/// let model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(10))));
/// let dram = WeightDram::load(&model, DramGeometry::default());
/// assert_eq!(dram.weight_bytes(), model.total_weights());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightDram {
    geometry: DramGeometry,
    /// Byte offset of each layer's weights within the weight image.
    layer_offsets: Vec<usize>,
    /// The stored weight image (one byte per 8-bit weight).
    image: Vec<u8>,
}

impl WeightDram {
    /// Copies the quantized weights of `model` into a fresh DRAM image.
    ///
    /// # Panics
    ///
    /// Panics if the weight image does not fit in the device capacity.
    pub fn load(model: &QuantizedModel, geometry: DramGeometry) -> Self {
        let mut layer_offsets = Vec::with_capacity(model.num_layers());
        let mut image = Vec::with_capacity(model.total_weights());
        for layer in model.layers() {
            layer_offsets.push(image.len());
            image.extend(layer.weights().values().iter().map(|&v| v as u8));
        }
        assert!(
            image.len() <= geometry.capacity(),
            "weight image of {} bytes exceeds DRAM capacity {}",
            image.len(),
            geometry.capacity()
        );
        WeightDram {
            geometry,
            layer_offsets,
            image,
        }
    }

    /// The device geometry.
    pub fn geometry(&self) -> DramGeometry {
        self.geometry
    }

    /// Total number of stored weight bytes.
    pub fn weight_bytes(&self) -> usize {
        self.image.len()
    }

    /// Number of stored layers.
    pub fn num_layers(&self) -> usize {
        self.layer_offsets.len()
    }

    /// Number of weight bytes stored for `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds.
    pub fn layer_len(&self, layer: usize) -> usize {
        assert!(
            layer < self.layer_offsets.len(),
            "layer {layer} out of bounds for {} stored layers",
            self.layer_offsets.len()
        );
        self.layer_offsets
            .get(layer + 1)
            .copied()
            .unwrap_or(self.image.len())
            - self.layer_offsets[layer]
    }

    /// Byte offset of `(layer, weight)` within the weight image.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds.
    pub fn offset_of(&self, layer: usize, weight: usize) -> usize {
        self.layer_offsets[layer] + weight
    }

    /// Translates a byte offset into a physical bank/row/column address (rows are filled
    /// sequentially, banks interleaved per row for locality).
    pub fn address_of(&self, offset: usize) -> DramAddress {
        let row_global = offset / self.geometry.row_bytes;
        DramAddress {
            bank: row_global % self.geometry.banks,
            row: row_global / self.geometry.banks,
            column: offset % self.geometry.row_bytes,
        }
    }

    /// Reads the stored byte at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is outside the weight image.
    pub fn read(&self, offset: usize) -> u8 {
        self.image[offset]
    }

    /// Overwrites the stored byte at `offset` — the write path a run-time recovery uses
    /// to zero flagged groups *in main memory*, so every later fetch delivers the
    /// recovered bytes instead of re-fetching the corruption.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is outside the weight image.
    pub fn write(&mut self, offset: usize, value: u8) {
        assert!(
            offset < self.image.len(),
            "offset {offset} out of bounds for {} stored bytes",
            self.image.len()
        );
        self.image[offset] = value;
    }

    /// Copies one layer's stored bytes into `buf` as signed weight values, without
    /// touching any model — the view a background scrubber verifies directly against
    /// the golden signatures (via
    /// [`RadarProtection::verify_layer_values`](radar_core::RadarProtection::verify_layer_values)).
    ///
    /// `buf` is cleared and refilled; its capacity is reused across calls.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds.
    pub fn read_layer_into(&self, layer: usize, buf: &mut Vec<i8>) {
        let start = self.layer_offsets[layer];
        let len = self.layer_len(layer);
        buf.clear();
        buf.extend(self.image[start..start + len].iter().map(|&b| b as i8));
    }

    /// Borrows one layer's raw stored bytes — the zero-copy input of the fused
    /// fetch-and-verify kernel
    /// ([`LayerPlan::copy_accumulate`](radar_core::LayerPlan::copy_accumulate)),
    /// which reinterprets and copies them itself so the fetch stream is swept
    /// exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds.
    pub fn layer_bytes(&self, layer: usize) -> &[u8] {
        let start = self.layer_offsets[layer];
        let len = self.layer_len(layer);
        &self.image[start..start + len]
    }

    /// Flips `bit` of the byte at `offset` (what one rowhammer-induced disturbance
    /// error does), returning the new byte value.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is outside the weight image or `bit >= 8`.
    pub fn flip_bit(&mut self, offset: usize, bit: u32) -> u8 {
        assert!(bit < 8, "bit index {bit} out of range");
        self.image[offset] ^= 1 << bit;
        self.image[offset]
    }

    /// Copies the (possibly corrupted) stored weights back into `model` — the DRAM →
    /// on-chip fetch that precedes RADAR's run-time check.
    ///
    /// # Panics
    ///
    /// Panics if `model` does not have the layer sizes this image was built from.
    pub fn fetch_into(&self, model: &mut QuantizedModel) {
        assert_eq!(
            model.num_layers(),
            self.layer_offsets.len(),
            "layer count mismatch"
        );
        for layer_idx in 0..self.layer_offsets.len() {
            self.fetch_layer_into(model, layer_idx);
        }
    }

    /// Copies one layer's stored weights back into `model` — the per-layer granularity
    /// of the DRAM → on-chip fetch.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds or its size does not match the stored image.
    pub fn fetch_layer_into(&self, model: &mut QuantizedModel, layer: usize) {
        assert!(
            layer < self.layer_offsets.len(),
            "layer {layer} out of bounds for {} stored layers",
            self.layer_offsets.len()
        );
        let start = self.layer_offsets[layer];
        let stored_len = self
            .layer_offsets
            .get(layer + 1)
            .copied()
            .unwrap_or(self.image.len())
            - start;
        let len = model.layer(layer).len();
        assert_eq!(
            len, stored_len,
            "layer {layer} holds {len} weights but the stored image has {stored_len}"
        );
        let weights = model.layer_weights_mut(layer);
        for (i, value) in weights.values_mut().iter_mut().enumerate() {
            *value = self.image[start + i] as i8;
        }
    }

    /// Fetches every layer and verifies each one as soon as its bytes land on chip —
    /// RADAR's signature check embedded in the weight-fetch path. Layer `i` is fetched
    /// and streamed through `radar`'s [`VerifyPlan`](radar_core::VerifyPlan) before
    /// layer `i + 1` is touched, so detection covers exactly the weights inference is
    /// about to consume, not a whole-model rescan afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `model` or `radar` disagree with the layer sizes this image was built
    /// from.
    pub fn fetch_into_verified(
        &self,
        model: &mut QuantizedModel,
        radar: &RadarProtection,
    ) -> DetectionReport {
        assert_eq!(
            model.num_layers(),
            self.layer_offsets.len(),
            "layer count mismatch"
        );
        let mut report = DetectionReport::default();
        // One accumulator sized for the widest layer serves every per-layer check.
        let mut acc = vec![0i32; radar.plan().max_groups()];
        for layer_idx in 0..self.layer_offsets.len() {
            self.fetch_layer_into(model, layer_idx);
            report.merge(&radar.detect_layers_with_scratch(
                model,
                layer_idx..layer_idx + 1,
                &mut acc,
            ));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_nn::{resnet20, ResNetConfig};

    fn model() -> QuantizedModel {
        QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))))
    }

    #[test]
    fn load_and_fetch_roundtrip_is_identity() {
        let mut m = model();
        let snapshot = m.snapshot();
        let dram = WeightDram::load(&m, DramGeometry::default());
        // Scramble the in-core copy, then fetch from DRAM: original values return.
        m.flip_bit(0, 0, 7);
        m.flip_bit(1, 1, 3);
        dram.fetch_into(&mut m);
        assert_eq!(m.snapshot(), snapshot);
    }

    #[test]
    fn flip_bit_corrupts_exactly_one_weight() {
        let mut m = model();
        let snapshot = m.snapshot();
        let mut dram = WeightDram::load(&m, DramGeometry::default());
        let offset = dram.offset_of(2, 7);
        dram.flip_bit(offset, 7);
        dram.fetch_into(&mut m);
        let corrupted = m.snapshot();
        assert_ne!(corrupted, snapshot);
        // Only the targeted weight changed.
        m.flip_bit(2, 7, 7);
        assert_eq!(m.snapshot(), snapshot);
    }

    #[test]
    fn addresses_are_within_geometry() {
        let m = model();
        let dram = WeightDram::load(&m, DramGeometry::default());
        let g = dram.geometry();
        for offset in [0usize, 1000, dram.weight_bytes() - 1] {
            let addr = dram.address_of(offset);
            assert!(addr.bank < g.banks);
            assert!(addr.row < g.rows_per_bank);
            assert!(addr.column < g.row_bytes);
        }
    }

    #[test]
    fn layer_offsets_are_contiguous() {
        let m = model();
        let dram = WeightDram::load(&m, DramGeometry::default());
        let mut expected = 0;
        for (i, layer) in m.layers().iter().enumerate() {
            assert_eq!(dram.offset_of(i, 0), expected);
            expected += layer.len();
        }
        assert_eq!(dram.weight_bytes(), expected);
    }

    #[test]
    fn fetch_layer_into_restores_one_layer_only() {
        let mut m = model();
        let snapshot = m.snapshot();
        let dram = WeightDram::load(&m, DramGeometry::default());
        m.flip_bit(0, 0, 7);
        m.flip_bit(1, 1, 3);
        dram.fetch_layer_into(&mut m, 0);
        assert_ne!(m.snapshot(), snapshot, "layer 1 must still be corrupted");
        dram.fetch_layer_into(&mut m, 1);
        assert_eq!(m.snapshot(), snapshot);
    }

    #[test]
    #[should_panic(expected = "stored image has")]
    fn fetching_a_mismatched_layer_size_panics() {
        let m = model();
        let dram = WeightDram::load(&m, DramGeometry::default());
        // Same layer count, wider layers: the per-layer size check must fire instead of
        // silently reading the next layer's bytes.
        let mut other = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::new(4, 8, 3, 7))));
        dram.fetch_layer_into(&mut other, 0);
    }

    #[test]
    fn verified_fetch_flags_exactly_the_corrupted_layer() {
        use radar_core::RadarConfig;

        let mut m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        let mut dram = WeightDram::load(&m, DramGeometry::default());
        dram.flip_bit(dram.offset_of(3, 11), 7);
        let report = dram.fetch_into_verified(&mut m, &radar);
        assert!(report.attack_detected());
        assert!(report.contains(3, radar.group_of(3, 11)));
        assert!(report.flagged.iter().all(|f| f.layer == 3));
        // The fetch itself delivered the corrupted byte on chip.
        assert_eq!(
            m.layer_values(3)[11],
            dram.read(dram.offset_of(3, 11)) as i8
        );
    }

    #[test]
    fn read_layer_into_matches_model_values_and_write_recovers() {
        use radar_core::{RadarConfig, RadarProtection};

        let mut m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        let mut dram = WeightDram::load(&m, DramGeometry::default());
        assert_eq!(dram.num_layers(), m.num_layers());
        let mut buf = Vec::new();
        for layer in 0..dram.num_layers() {
            assert_eq!(dram.layer_len(layer), m.layer(layer).len());
            dram.read_layer_into(layer, &mut buf);
            assert_eq!(buf.as_slice(), m.layer_values(layer));
        }

        // Corrupt a byte in DRAM: the raw-slice verification over the stored bytes
        // flags it without any model fetch, and `write` restores it in place.
        let offset = dram.offset_of(4, 9);
        let clean = dram.read(offset);
        dram.flip_bit(offset, 7);
        dram.read_layer_into(4, &mut buf);
        assert!(radar.verify_layer_values(4, &buf).attack_detected());
        dram.write(offset, clean);
        dram.read_layer_into(4, &mut buf);
        assert!(!radar.verify_layer_values(4, &buf).attack_detected());
        // The in-core model was never involved.
        dram.fetch_into(&mut m);
        assert!(!radar.detect(&m).attack_detected());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_outside_image_panics() {
        let m = model();
        let mut dram = WeightDram::load(&m, DramGeometry::default());
        dram.write(dram.weight_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds DRAM capacity")]
    fn oversized_image_panics() {
        let m = model();
        WeightDram::load(
            &m,
            DramGeometry {
                banks: 1,
                rows_per_bank: 1,
                row_bytes: 16,
            },
        );
    }
}
