//! Smoke test: the reference networks build, run forward with the right shapes, and a
//! few SGD steps on a toy problem actually reduce the loss.

use radar_nn::{resnet20, Layer, Linear, Optimizer, ResNetConfig, Sgd, SoftmaxCrossEntropy};
use radar_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn resnet20_tiny_forward_has_logit_shape() {
    let cfg = ResNetConfig::tiny(7);
    let mut net = resnet20(&cfg);
    let x = Tensor::zeros(&[2, cfg.in_channels, 8, 8]);
    let logits = net.forward(&x, false);
    assert_eq!(logits.dims(), &[2, 7]);
}

#[test]
fn a_few_sgd_steps_reduce_the_loss() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = Linear::new(&mut rng, 4, 3);
    let loss_fn = SoftmaxCrossEntropy::new();
    let mut opt = Sgd::new(0.5, 0.0, 0.0);

    // A linearly separable toy batch: feature i active for class i.
    let x = Tensor::from_vec(
        vec![
            1.0, 0.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 1.0, 0.0,
        ],
        &[3, 4],
    )
    .unwrap();
    let labels = [0usize, 1, 2];

    let mut losses = Vec::new();
    for _ in 0..30 {
        net.zero_grad();
        let logits = net.forward(&x, true);
        let (loss, grad) = loss_fn.forward_backward(&logits, &labels);
        losses.push(loss);
        net.backward(&grad);
        opt.step(&mut net);
    }
    let first = losses[0];
    let last = *losses.last().unwrap();
    assert!(
        last < first * 0.5,
        "training failed to reduce loss: first {first}, last {last}"
    );
}
