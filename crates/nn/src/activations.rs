use radar_tensor::Tensor;

use crate::layer::{Layer, Param};

/// Rectified linear unit: `y = max(x, 0)`.
///
/// # Example
///
/// ```
/// use radar_nn::{Layer, Relu};
/// use radar_tensor::Tensor;
///
/// let mut relu = Relu::new();
/// let y = relu.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap(), false);
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// ```
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a new ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.mask = Some(input.data().iter().map(|&x| x > 0.0).collect());
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("Relu::backward called before forward");
        assert_eq!(
            mask.len(),
            grad_output.numel(),
            "Relu backward size mismatch"
        );
        let data = grad_output
            .data()
            .iter()
            .zip(mask.iter())
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_output.dims()).expect("relu grad shape is consistent")
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(&str, &mut Param)) {}

    fn name(&self) -> &str {
        "relu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let y = relu.forward(&Tensor::from_vec(vec![-2.0, 0.0, 3.0], &[3]).unwrap(), true);
        assert_eq!(y.data(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::new();
        relu.forward(&Tensor::from_vec(vec![-2.0, 0.5, 3.0], &[3]).unwrap(), true);
        let g = relu.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]).unwrap());
        assert_eq!(g.data(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn has_no_params() {
        let mut relu = Relu::new();
        assert_eq!((&mut relu as &mut dyn Layer).param_count(), 0);
    }

    #[test]
    #[should_panic(expected = "called before forward")]
    fn backward_before_forward_panics() {
        Relu::new().backward(&Tensor::zeros(&[1]));
    }
}
