//! A small self-describing binary checkpoint format for model parameters.
//!
//! The format is: magic `b"RNNP"`, `u32` parameter count, then for each parameter the
//! UTF-8 name (length-prefixed), the rank, the dimensions and the raw little-endian
//! `f32` data. It exists so experiment binaries can train a model once and share it.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use radar_tensor::Tensor;

use crate::layer::Layer;

const MAGIC: &[u8; 4] = b"RNNP";

/// Errors produced while saving or loading checkpoints.
#[derive(Debug)]
pub enum SerializeError {
    /// An underlying I/O error.
    Io(io::Error),
    /// The file did not start with the expected magic bytes.
    BadMagic,
    /// The checkpoint does not contain a parameter the model expects.
    MissingParam(String),
    /// A stored parameter's shape does not match the model's parameter.
    ShapeMismatch {
        /// Parameter path.
        name: String,
        /// Shape expected by the model.
        expected: Vec<usize>,
        /// Shape found in the checkpoint.
        found: Vec<usize>,
    },
    /// The checkpoint contains malformed data (e.g. a non-UTF-8 name).
    Corrupt(String),
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "i/o error: {e}"),
            SerializeError::BadMagic => write!(f, "not a RNNP checkpoint (bad magic)"),
            SerializeError::MissingParam(name) => {
                write!(f, "checkpoint is missing parameter '{name}'")
            }
            SerializeError::ShapeMismatch {
                name,
                expected,
                found,
            } => {
                write!(
                    f,
                    "shape mismatch for '{name}': expected {expected:?}, found {found:?}"
                )
            }
            SerializeError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl Error for SerializeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SerializeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SerializeError {
    fn from(e: io::Error) -> Self {
        SerializeError::Io(e)
    }
}

/// Saves all parameters of `model` to `path`.
///
/// # Errors
///
/// Returns an error if the file cannot be created or written.
pub fn save_params(model: &mut dyn Layer, path: &Path) -> Result<(), SerializeError> {
    let mut entries: Vec<(String, Vec<usize>, Vec<f32>)> = Vec::new();
    model.visit_params("", &mut |name, p| {
        entries.push((
            name.to_owned(),
            p.value.dims().to_vec(),
            p.value.data().to_vec(),
        ));
    });
    // Non-trainable buffers (e.g. batch-norm running statistics) are stored as rank-1
    // entries alongside the parameters; names never collide because layers use distinct
    // parameter and buffer names.
    model.visit_buffers("", &mut |name, buf| {
        entries.push((name.to_owned(), vec![buf.len()], buf.clone()));
    });

    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(entries.len() as u32).to_le_bytes())?;
    for (name, dims, data) in entries {
        let name_bytes = name.as_bytes();
        w.write_all(&(name_bytes.len() as u32).to_le_bytes())?;
        w.write_all(name_bytes)?;
        w.write_all(&(dims.len() as u32).to_le_bytes())?;
        for d in &dims {
            w.write_all(&(*d as u64).to_le_bytes())?;
        }
        for v in &data {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Loads parameters saved by [`save_params`] into `model`.
///
/// Parameters are matched by path name; every parameter the model declares must be
/// present with a matching shape. Extra parameters in the checkpoint are ignored.
///
/// # Errors
///
/// Returns an error on I/O failure, malformed data, missing parameters or shape
/// mismatches.
pub fn load_params(model: &mut dyn Layer, path: &Path) -> Result<(), SerializeError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SerializeError::BadMagic);
    }
    let count = read_u32(&mut r)? as usize;
    let mut stored: HashMap<String, Tensor> = HashMap::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| SerializeError::Corrupt("parameter name is not UTF-8".into()))?;
        let rank = read_u32(&mut r)? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            dims.push(u64::from_le_bytes(b) as usize);
        }
        let numel: usize = dims.iter().product();
        let mut data = vec![0.0f32; numel];
        for v in &mut data {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            *v = f32::from_le_bytes(b);
        }
        let tensor = Tensor::from_vec(data, &dims)
            .map_err(|e| SerializeError::Corrupt(format!("inconsistent tensor entry: {e}")))?;
        stored.insert(name, tensor);
    }

    let mut failure: Option<SerializeError> = None;
    model.visit_params("", &mut |name, p| {
        if failure.is_some() {
            return;
        }
        match stored.get(name) {
            None => failure = Some(SerializeError::MissingParam(name.to_owned())),
            Some(t) if t.dims() != p.value.dims() => {
                failure = Some(SerializeError::ShapeMismatch {
                    name: name.to_owned(),
                    expected: p.value.dims().to_vec(),
                    found: t.dims().to_vec(),
                })
            }
            Some(t) => p.value = t.clone(),
        }
    });
    // Buffers are restored when present. Checkpoints written before buffers existed are
    // still loadable for parameter-only use, but models with batch-norm layers need the
    // buffers, so their absence is an error too.
    model.visit_buffers("", &mut |name, buf| {
        if failure.is_some() {
            return;
        }
        match stored.get(name) {
            None => failure = Some(SerializeError::MissingParam(name.to_owned())),
            Some(t) if t.numel() != buf.len() => {
                failure = Some(SerializeError::ShapeMismatch {
                    name: name.to_owned(),
                    expected: vec![buf.len()],
                    found: t.dims().to_vec(),
                })
            }
            Some(t) => *buf = t.data().to_vec(),
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, io::Error> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, Linear, Relu, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Sequential::new();
        m.push(Linear::new(&mut rng, 4, 8));
        m.push(Relu::new());
        m.push(Linear::new(&mut rng, 8, 2));
        m
    }

    #[test]
    fn save_load_roundtrip_restores_weights() {
        let dir = std::env::temp_dir().join("radar_nn_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.rnnp");

        let mut source = model(1);
        save_params(&mut source, &path).unwrap();

        let mut target = model(2);
        // Different seed ⇒ different weights before loading.
        let x = radar_tensor::Tensor::ones(&[1, 4]);
        let before = target.forward(&x, false);
        load_params(&mut target, &path).unwrap();
        let after = target.forward(&x, false);
        let reference = source.forward(&x, false);
        assert_ne!(before.data(), reference.data());
        assert_eq!(after.data(), reference.data());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn loading_into_wrong_architecture_fails() {
        let dir = std::env::temp_dir().join("radar_nn_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wrong_arch.rnnp");

        let mut source = model(1);
        save_params(&mut source, &path).unwrap();

        let mut rng = StdRng::seed_from_u64(0);
        let mut other = Sequential::new();
        other.push(Linear::new(&mut rng, 5, 2));
        let err = load_params(&mut other, &path).unwrap_err();
        assert!(matches!(
            err,
            SerializeError::MissingParam(_) | SerializeError::ShapeMismatch { .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_detected() {
        let dir = std::env::temp_dir().join("radar_nn_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_magic.rnnp");
        std::fs::write(&path, b"NOPE0000").unwrap();
        let mut m = model(1);
        assert!(matches!(
            load_params(&mut m, &path),
            Err(SerializeError::BadMagic)
        ));
        std::fs::remove_file(&path).unwrap();
    }
}

#[cfg(test)]
mod buffer_tests {
    use super::*;
    use crate::{resnet20, Layer, ResNetConfig};
    use radar_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Batch-norm running statistics must survive a save/load roundtrip, otherwise a
    /// reloaded model evaluates at chance level (regression test for the bug found while
    /// building the experiment harness).
    #[test]
    fn batchnorm_running_stats_roundtrip_through_checkpoints() {
        let dir = std::env::temp_dir().join("radar_nn_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bn_buffers.rnnp");

        let mut rng = StdRng::seed_from_u64(9);
        let mut source = resnet20(&ResNetConfig::tiny(4));
        // A few training-mode passes move the running statistics away from (0, 1).
        for _ in 0..3 {
            let x = Tensor::rand_normal(&mut rng, &[4, 3, 8, 8], 1.0, 2.0);
            source.forward(&x, true);
        }
        let probe = Tensor::rand_normal(&mut rng, &[2, 3, 8, 8], 1.0, 2.0);
        let reference = source.forward(&probe, false);
        save_params(&mut source, &path).unwrap();

        let mut reloaded = resnet20(&ResNetConfig::tiny(4));
        load_params(&mut reloaded, &path).unwrap();
        let output = reloaded.forward(&probe, false);
        let max_diff = output
            .data()
            .iter()
            .zip(reference.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 1e-5, "reloaded model diverges by {max_diff}");
        std::fs::remove_file(&path).unwrap();
    }
}
