use radar_tensor::Tensor;

use crate::layer::{join_path, Layer, Param};

/// Per-channel batch normalization for `(N, C, H, W)` activations.
///
/// In training mode the layer normalizes with batch statistics and updates running
/// estimates; in evaluation mode it uses the running estimates. The backward pass
/// matches whichever mode the preceding forward pass used (PBFA computes gradients in
/// evaluation mode, as the original attack does).
///
/// # Example
///
/// ```
/// use radar_nn::{BatchNorm2d, Layer};
/// use radar_tensor::Tensor;
///
/// let mut bn = BatchNorm2d::new(4);
/// let y = bn.forward(&Tensor::zeros(&[2, 4, 3, 3]), true);
/// assert_eq!(y.dims(), &[2, 4, 3, 3]);
/// ```
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    channels: usize,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    train: bool,
    dims: [usize; 4],
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` channels with `gamma = 1`, `beta = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channel count must be non-zero");
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            channels,
            cache: None,
        }
    }

    /// Number of normalized channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The running (evaluation-mode) mean per channel.
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// The running (evaluation-mode) variance per channel.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(
            input.shape().rank(),
            4,
            "BatchNorm2d expects (N, C, H, W), got {}",
            input.shape()
        );
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        assert_eq!(
            c, self.channels,
            "BatchNorm2d channels {} != expected {}",
            c, self.channels
        );
        let plane = h * w;
        let count = (n * plane) as f32;

        let (mean, var) = if train {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for ci in 0..c {
                let mut sum = 0.0;
                for ni in 0..n {
                    let base = ((ni * c) + ci) * plane;
                    sum += input.data()[base..base + plane].iter().sum::<f32>();
                }
                mean[ci] = sum / count;
                let mut sq = 0.0;
                for ni in 0..n {
                    let base = ((ni * c) + ci) * plane;
                    sq += input.data()[base..base + plane]
                        .iter()
                        .map(|&x| (x - mean[ci]) * (x - mean[ci]))
                        .sum::<f32>();
                }
                var[ci] = sq / count;
            }
            for ci in 0..c {
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean[ci];
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var[ci];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut out = vec![0.0f32; input.numel()];
        let mut x_hat = vec![0.0f32; input.numel()];
        for ni in 0..n {
            for ci in 0..c {
                let base = ((ni * c) + ci) * plane;
                let g = self.gamma.value.data()[ci];
                let b = self.beta.value.data()[ci];
                for s in 0..plane {
                    let xh = (input.data()[base + s] - mean[ci]) * inv_std[ci];
                    x_hat[base + s] = xh;
                    out[base + s] = g * xh + b;
                }
            }
        }
        self.cache = Some(BnCache {
            x_hat: Tensor::from_vec(x_hat, input.dims()).expect("bn cache shape is consistent"),
            inv_std,
            train,
            dims: [n, c, h, w],
        });
        Tensor::from_vec(out, input.dims()).expect("bn output shape is consistent")
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("BatchNorm2d::backward called before forward");
        let [n, c, h, w] = cache.dims;
        let plane = h * w;
        let count = (n * plane) as f32;

        // dgamma, dbeta.
        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = ((ni * c) + ci) * plane;
                for s in 0..plane {
                    dgamma[ci] += grad_output.data()[base + s] * cache.x_hat.data()[base + s];
                    dbeta[ci] += grad_output.data()[base + s];
                }
            }
        }
        self.gamma.grad.add_scaled_inplace(
            &Tensor::from_vec(dgamma.clone(), &[c]).expect("gamma grad shape"),
            1.0,
        );
        self.beta.grad.add_scaled_inplace(
            &Tensor::from_vec(dbeta.clone(), &[c]).expect("beta grad shape"),
            1.0,
        );

        let mut dx = vec![0.0f32; grad_output.numel()];
        if cache.train {
            // Full batch-norm backward: propagate through batch statistics.
            for ci in 0..c {
                let g = self.gamma.value.data()[ci];
                let inv_std = cache.inv_std[ci];
                let sum_dy = dbeta[ci];
                let sum_dy_xhat = dgamma[ci];
                for ni in 0..n {
                    let base = ((ni * c) + ci) * plane;
                    for s in 0..plane {
                        let dy = grad_output.data()[base + s];
                        let xh = cache.x_hat.data()[base + s];
                        dx[base + s] =
                            g * inv_std * (dy - sum_dy / count - xh * sum_dy_xhat / count);
                    }
                }
            }
        } else {
            // Evaluation mode: statistics are constants.
            for ci in 0..c {
                let g = self.gamma.value.data()[ci];
                let inv_std = cache.inv_std[ci];
                for ni in 0..n {
                    let base = ((ni * c) + ci) * plane;
                    for s in 0..plane {
                        dx[base + s] = grad_output.data()[base + s] * g * inv_std;
                    }
                }
            }
        }
        Tensor::from_vec(dx, grad_output.dims()).expect("bn grad shape is consistent")
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&join_path(prefix, "gamma"), &mut self.gamma);
        f(&join_path(prefix, "beta"), &mut self.beta);
    }

    fn visit_buffers(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Vec<f32>)) {
        f(&join_path(prefix, "running_mean"), &mut self.running_mean);
        f(&join_path(prefix, "running_var"), &mut self.running_var);
    }

    fn name(&self) -> &str {
        "batchnorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_output_is_normalized() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::rand_normal(&mut rng, &[4, 3, 5, 5], 2.0, 3.0);
        let y = bn.forward(&x, true);
        // Per-channel mean ~0 and var ~1.
        let plane = 25;
        for ci in 0..3 {
            let mut vals = Vec::new();
            for ni in 0..4 {
                let base = ((ni * 3) + ci) * plane;
                vals.extend_from_slice(&y.data()[base..base + plane]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bn = BatchNorm2d::new(2);
        // Train a few batches so running stats move towards the data statistics.
        for _ in 0..200 {
            let x = Tensor::rand_normal(&mut rng, &[8, 2, 4, 4], 5.0, 2.0);
            bn.forward(&x, true);
        }
        assert!((bn.running_mean()[0] - 5.0).abs() < 0.5);
        assert!((bn.running_var()[0] - 4.0).abs() < 1.0);
        // In eval mode a constant input equal to the running mean maps to ~beta (0).
        let x = Tensor::full(&[1, 2, 4, 4], bn.running_mean()[0]);
        let y = bn.forward(&x, false);
        assert!(y.data().iter().all(|&v| v.abs() < 0.2));
    }

    #[test]
    fn eval_backward_scales_by_gamma_over_std() {
        let mut bn = BatchNorm2d::new(1);
        bn.running_var = vec![3.0];
        bn.running_mean = vec![1.0];
        let x = Tensor::full(&[1, 1, 2, 2], 2.0);
        bn.forward(&x, false);
        let g = bn.backward(&Tensor::ones(&[1, 1, 2, 2]));
        let expected = 1.0 / (3.0f32 + 1e-5).sqrt();
        assert!(g.data().iter().all(|&v| (v - expected).abs() < 1e-5));
    }

    #[test]
    fn train_backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::rand_normal(&mut rng, &[2, 2, 3, 3], 0.0, 1.0);

        // Loss = sum(bn(x) * w) with a fixed weighting to break symmetry.
        let wgt: Vec<f32> = (0..x.numel())
            .map(|i| ((i % 5) as f32 - 2.0) * 0.3)
            .collect();
        let weighted_sum =
            |y: &Tensor| -> f32 { y.data().iter().zip(&wgt).map(|(&a, &b)| a * b).sum() };

        bn.zero_grad();
        let y = bn.forward(&x, true);
        let grad_out = Tensor::from_vec(wgt.clone(), y.dims()).unwrap();
        let grad_in = bn.backward(&grad_out);

        let eps = 1e-3;
        for &idx in &[0usize, 10, 30] {
            // Fresh layer so running stats do not drift between evaluations.
            let mut bn2 = BatchNorm2d::new(2);
            let base = weighted_sum(&bn2.forward(&x, true));
            let mut x_plus = x.clone();
            x_plus.data_mut()[idx] += eps;
            let mut bn3 = BatchNorm2d::new(2);
            let plus = weighted_sum(&bn3.forward(&x_plus, true));
            let fd = (plus - base) / eps;
            assert!(
                (grad_in.data()[idx] - fd).abs() < 0.05 * (1.0 + fd.abs()),
                "idx {idx}: {} vs {fd}",
                grad_in.data()[idx]
            );
        }
    }

    #[test]
    fn visit_params_reports_gamma_beta() {
        let mut bn = BatchNorm2d::new(4);
        assert_eq!(
            (&mut bn as &mut dyn Layer).param_names(),
            vec!["gamma", "beta"]
        );
    }
}
