use radar_tensor::{
    col2im, gemm_i8_requant, gemm_threads, im2col, im2col_i8, quantize_activations, Conv2dGeometry,
    Tensor,
};
use rand::Rng;

use crate::init::he_normal;
use crate::layer::{join_path, Layer, Param};
use crate::quantized::QuantCursor;

/// A 2-D convolution layer with square kernels, configurable stride and zero padding.
///
/// Input layout is `(N, C_in, H, W)`, weights `(C_out, C_in, K, K)`, output
/// `(N, C_out, H_out, W_out)`. The forward pass is an im2col lowering followed by a
/// matrix product, so the whole convolution — the dominant compute of the paper's
/// ResNet models — reuses the tensor crate's matmul kernel.
///
/// # Example
///
/// ```
/// use radar_nn::{Conv2d, Layer};
/// use radar_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut conv = Conv2d::new(&mut rng, 3, 8, 3, 1, 1);
/// let y = conv.forward(&Tensor::zeros(&[2, 3, 16, 16]), false);
/// assert_eq!(y.dims(), &[2, 8, 16, 16]);
/// ```
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    geom: Conv2dGeometry,
    cached_cols: Option<Tensor>,
    cached_input_dims: Option<[usize; 4]>,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if any of `in_channels`, `out_channels`, `kernel` or `stride` is zero.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0,
            "channel counts must be non-zero"
        );
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            weight: Param::new(he_normal(
                rng,
                &[out_channels, in_channels, kernel, kernel],
                fan_in,
            )),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            geom: Conv2dGeometry::new(kernel, kernel, stride, padding),
            cached_cols: None,
            cached_input_dims: None,
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Convolution geometry (kernel size, stride, padding).
    pub fn geometry(&self) -> Conv2dGeometry {
        self.geom
    }

    /// Immutable access to the weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Validates the input shape and returns `(n, c, h, w)`.
    fn check_input(&self, input: &Tensor) -> (usize, usize, usize, usize) {
        assert_eq!(
            input.shape().rank(),
            4,
            "Conv2d expects (N, C, H, W), got {}",
            input.shape()
        );
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        assert_eq!(
            c, self.in_channels,
            "Conv2d input channels {} != expected {}",
            c, self.in_channels
        );
        (n, c, h, w)
    }

    /// Reorders `(C_out, N*Ho*Wo)` matmul output into `(N, C_out, Ho, Wo)`.
    fn to_nchw(out2: &Tensor, n: usize, c_out: usize, ho: usize, wo: usize) -> Tensor {
        let mut out = vec![0.0f32; n * c_out * ho * wo];
        let data = out2.data();
        let cols = n * ho * wo;
        for co in 0..c_out {
            for ni in 0..n {
                for s in 0..ho * wo {
                    out[((ni * c_out) + co) * ho * wo + s] = data[co * cols + ni * ho * wo + s];
                }
            }
        }
        Tensor::from_vec(out, &[n, c_out, ho, wo]).expect("conv output shape is consistent")
    }

    /// Reorders `(N, C_out, Ho, Wo)` gradients into `(C_out, N*Ho*Wo)`.
    fn to_matrix(grad: &Tensor, n: usize, c_out: usize, ho: usize, wo: usize) -> Tensor {
        let mut out = vec![0.0f32; c_out * n * ho * wo];
        let data = grad.data();
        let cols = n * ho * wo;
        for ni in 0..n {
            for co in 0..c_out {
                for s in 0..ho * wo {
                    out[co * cols + ni * ho * wo + s] = data[((ni * c_out) + co) * ho * wo + s];
                }
            }
        }
        Tensor::from_vec(out, &[c_out, cols]).expect("conv grad shape is consistent")
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let (n, c, h, w) = self.check_input(input);
        let cols = im2col(input, &self.geom);
        let k = self.geom.kernel_h;
        let w2 = self
            .weight
            .value
            .reshape(&[self.out_channels, self.in_channels * k * k])
            .expect("conv weight reshape is consistent");
        let mut out2 = w2.matmul(&cols);
        let (ho, wo) = self.geom.output_size(h, w);
        // Add bias per output channel.
        let ncols = n * ho * wo;
        for co in 0..self.out_channels {
            let b = self.bias.value.data()[co];
            for v in &mut out2.data_mut()[co * ncols..(co + 1) * ncols] {
                *v += b;
            }
        }
        self.cached_cols = Some(cols);
        self.cached_input_dims = Some([n, c, h, w]);
        Self::to_nchw(&out2, n, self.out_channels, ho, wo)
    }

    fn forward_quantized(&mut self, input: &Tensor, weights: &mut QuantCursor<'_>) -> Tensor {
        let (n, _, h, w) = self.check_input(input);
        let (kh, kw) = (self.geom.kernel_h, self.geom.kernel_w);
        let view = weights.take(&[self.out_channels, self.in_channels, kh, kw]);

        let kk = self.in_channels * kh * kw;
        let (ho, wo) = self.geom.output_size(h, w);
        let ncols = n * ho * wo;
        // True-integer path straight off the i8 weight panel: quantize the *input*
        // at a power-of-two scale (each element rounded once, not once per kernel
        // position), unfold it with the i8 im2col, accumulate i8×i8 products in i32,
        // and fold weight scale × activation scale plus the channel bias into one
        // requantization epilogue. Padding quantizes to exact zero, so this is
        // element-for-element identical to quantizing after the unfold — at K²×
        // less rounding work and a quarter of the unfolded-matrix traffic. The
        // float weight parameter is never read and nothing is cached (eval only).
        let (xq, a_scale) = quantize_activations(input.data());
        let (ni, ci) = (input.dims()[0], input.dims()[1]);
        let cols_q = im2col_i8(&xq, ni, ci, h, w, &self.geom);
        let out2 = gemm_i8_requant(
            view.values,
            &cols_q,
            self.out_channels,
            kk,
            ncols,
            &[view.scale * a_scale],
            Some(self.bias.value.data()),
            gemm_threads(),
        );
        let out2 = Tensor::from_vec(out2, &[self.out_channels, ncols]).expect("conv output shape");
        Self::to_nchw(&out2, n, self.out_channels, ho, wo)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cols = self
            .cached_cols
            .as_ref()
            .expect("Conv2d::backward called before forward");
        let [n, c, h, w] = self
            .cached_input_dims
            .expect("Conv2d::backward called before forward");
        let (ho, wo) = self.geom.output_size(h, w);
        let k = self.geom.kernel_h;

        let grad2 = Self::to_matrix(grad_output, n, self.out_channels, ho, wo);
        // dW = grad2 @ cols^T reshaped to the kernel shape.
        let grad_w = grad2.matmul(&cols.transpose2d());
        let grad_w = grad_w
            .reshape(&[self.out_channels, self.in_channels, k, k])
            .expect("conv weight grad reshape is consistent");
        self.weight.grad.add_scaled_inplace(&grad_w, 1.0);

        // db = row sums of grad2.
        let ncols = n * ho * wo;
        let mut grad_b = vec![0.0f32; self.out_channels];
        for (co, acc) in grad_b.iter_mut().enumerate() {
            *acc = grad2.data()[co * ncols..(co + 1) * ncols].iter().sum();
        }
        self.bias.grad.add_scaled_inplace(
            &Tensor::from_vec(grad_b, &[self.out_channels]).expect("bias grad shape"),
            1.0,
        );

        // dx = col2im(W^T @ grad2).
        let w2 = self
            .weight
            .value
            .reshape(&[self.out_channels, self.in_channels * k * k])
            .expect("conv weight reshape is consistent");
        let dcols = w2.transpose2d().matmul(&grad2);
        col2im(&dcols, &self.geom, n, c, h, w)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&join_path(prefix, "weight"), &mut self.weight);
        f(&join_path(prefix, "bias"), &mut self.bias);
    }

    fn name(&self) -> &str {
        "conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_with_stride_and_padding() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(&mut rng, 3, 5, 3, 2, 1);
        let y = conv.forward(&Tensor::zeros(&[2, 3, 8, 8]), false);
        assert_eq!(y.dims(), &[2, 5, 4, 4]);
    }

    #[test]
    fn forward_known_kernel_matches_manual() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(&mut rng, 1, 1, 2, 1, 0);
        conv.weight.value = Tensor::from_vec(vec![1.0, 0.0, 0.0, -1.0], &[1, 1, 2, 2]).unwrap();
        conv.bias.value = Tensor::from_vec(vec![0.5], &[1]).unwrap();
        let x = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let y = conv.forward(&x, false);
        // y[oh][ow] = x[oh][ow] - x[oh+1][ow+1] + 0.5 = -4 + 0.5
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert!(y.data().iter().all(|&v| (v + 3.5).abs() < 1e-6));
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(&mut rng, 2, 3, 3, 1, 1);
        let x = Tensor::rand_normal(&mut rng, &[1, 2, 5, 5], 0.0, 1.0);

        conv.zero_grad();
        let y = conv.forward(&x, true);
        let ones = Tensor::ones(y.dims());
        let grad_in = conv.backward(&ones);
        assert_eq!(grad_in.dims(), x.dims());

        let eps = 1e-2;
        for &idx in &[0usize, 7, 20] {
            let base: f32 = conv.forward(&x, true).sum();
            conv.weight.value.data_mut()[idx] += eps;
            let plus: f32 = conv.forward(&x, true).sum();
            conv.weight.value.data_mut()[idx] -= eps;
            let fd = (plus - base) / eps;
            let analytic = conv.weight.grad.data()[idx];
            assert!(
                (analytic - fd).abs() < 0.05 * (1.0 + fd.abs()),
                "idx {idx}: {analytic} vs {fd}"
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(&mut rng, 1, 2, 3, 2, 1);
        let x = Tensor::rand_normal(&mut rng, &[1, 1, 6, 6], 0.0, 1.0);

        conv.zero_grad();
        let y = conv.forward(&x, true);
        let grad_in = conv.backward(&Tensor::ones(y.dims()));

        let eps = 1e-2;
        let base: f32 = conv.forward(&x, true).sum();
        for &idx in &[0usize, 13, 35] {
            let mut x_plus = x.clone();
            x_plus.data_mut()[idx] += eps;
            let plus: f32 = conv.forward(&x_plus, true).sum();
            let fd = (plus - base) / eps;
            let analytic = grad_in.data()[idx];
            assert!(
                (analytic - fd).abs() < 0.05 * (1.0 + fd.abs()),
                "idx {idx}: {analytic} vs {fd}"
            );
        }
    }

    #[test]
    fn forward_quantized_matches_float_forward_on_integer_weights() {
        use crate::quantized::forward_quantized_with;
        use crate::QuantView;

        let mut rng = StdRng::seed_from_u64(9);
        let mut conv = Conv2d::new(&mut rng, 2, 3, 3, 1, 1);
        // Integer weights with unit scale and integer-valued activations: the
        // power-of-two activation scale makes quantization exact, so the integer
        // kernel must be bit-identical to the float path.
        let q: Vec<i8> = (0..3 * 2 * 3 * 3).map(|v| (v % 9) as i8 - 4).collect();
        conv.weight.value =
            Tensor::from_vec(q.iter().map(|&v| v as f32).collect(), &[3, 2, 3, 3]).unwrap();
        conv.bias.value = Tensor::from_vec(vec![0.25, -0.5, 1.0], &[3]).unwrap();
        let x = Tensor::from_vec(
            (0..2 * 2 * 5 * 5)
                .map(|v| ((v * 7) % 11) as f32 - 5.0)
                .collect(),
            &[2, 2, 5, 5],
        )
        .unwrap();
        let float_out = conv.forward(&x, false);

        let dims = [3usize, 2, 3, 3];
        let views = [QuantView::new(&q, 1.0, &dims)];
        let quant_out = forward_quantized_with(&mut conv, &x, &views);
        assert_eq!(float_out.data(), quant_out.data());
        assert_eq!(float_out.dims(), quant_out.dims());
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn forward_quantized_rejects_mismatched_view_shape() {
        use crate::quantized::forward_quantized_with;
        use crate::QuantView;

        let mut rng = StdRng::seed_from_u64(10);
        let mut conv = Conv2d::new(&mut rng, 1, 1, 3, 1, 1);
        let q = vec![1i8; 4];
        let dims = [1usize, 1, 2, 2];
        let views = [QuantView::new(&q, 1.0, &dims)];
        forward_quantized_with(&mut conv, &Tensor::zeros(&[1, 1, 4, 4]), &views);
    }

    #[test]
    fn visit_params_reports_weight_and_bias() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(&mut rng, 2, 4, 3, 1, 1);
        let names = (&mut conv as &mut dyn Layer).param_names();
        assert_eq!(names, vec!["weight", "bias"]);
        assert_eq!(
            (&mut conv as &mut dyn Layer).param_count(),
            4 * 2 * 3 * 3 + 4
        );
    }
}
