use radar_tensor::Tensor;

use crate::quantized::QuantCursor;

/// A learnable parameter: its value and the gradient accumulated by the last backward
/// pass.
///
/// # Example
///
/// ```
/// use radar_nn::Param;
/// use radar_tensor::Tensor;
///
/// let p = Param::new(Tensor::zeros(&[4, 4]));
/// assert_eq!(p.value.numel(), 16);
/// assert_eq!(p.grad.numel(), 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient of the loss with respect to [`value`](Param::value), accumulated by the
    /// most recent backward pass.
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter with the given initial value and a zero gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param { value, grad }
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.dims());
    }
}

/// A neural-network layer with hand-derived forward and backward passes.
///
/// Layers cache whatever they need from the forward pass so that
/// [`backward`](Layer::backward) can be called immediately afterwards with the gradient
/// of the loss with respect to the layer output; it returns the gradient with respect to
/// the layer input and accumulates parameter gradients internally.
///
/// The trait is object safe so models can be composed from `Box<dyn Layer>`, and
/// requires `Send` so boxed models (and the quantized wrappers around them) can move
/// into worker threads — every layer is plain tensor data, so this costs nothing.
pub trait Layer: Send {
    /// Runs the layer on `input`. `train` selects training behaviour (e.g. batch
    /// statistics in [`BatchNorm2d`](crate::BatchNorm2d)).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Propagates `grad_output` (gradient w.r.t. this layer's output) backwards,
    /// returning the gradient w.r.t. this layer's input and accumulating parameter
    /// gradients.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before [`forward`](Layer::forward).
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Visits every parameter of this layer (and sub-layers) in a stable order.
    ///
    /// The visitor receives a hierarchical, `/`-separated name (e.g.
    /// `"stage1/block0/conv1/weight"`) and a mutable reference to the parameter.
    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param));

    /// Visits every non-trainable state buffer of this layer (and sub-layers) in a
    /// stable order — e.g. batch-norm running statistics. Buffers are not touched by
    /// optimizers but must be saved and restored with checkpoints.
    ///
    /// The default implementation visits nothing.
    fn visit_buffers(&mut self, _prefix: &str, _f: &mut dyn FnMut(&str, &mut Vec<f32>)) {}

    /// Evaluation-mode forward pass executing directly off borrowed quantized
    /// weights: weight-bearing layers ([`Conv2d`](crate::Conv2d),
    /// [`Linear`](crate::Linear)) take their panel from `weights` and run the true
    /// integer GEMM — quantized activations, i8×i8 products accumulated in `i32`,
    /// scales and bias folded into the requantization epilogue; containers thread the
    /// cursor through their children in forward order; everything else falls back to
    /// the float forward in evaluation mode (the default implementation below).
    ///
    /// The float weight parameters of weight-bearing layers are never read — this is
    /// the path that executes the DRAM-resident `i8` image the RADAR check verifies.
    fn forward_quantized(&mut self, input: &Tensor, weights: &mut QuantCursor<'_>) -> Tensor {
        let _ = weights;
        self.forward(input, false)
    }

    /// Resets all parameter gradients to zero.
    fn zero_grad(&mut self) {
        self.visit_params("", &mut |_, p| p.zero_grad());
    }

    /// A short human-readable layer name used in parameter paths.
    fn name(&self) -> &str;
}

/// Extension helpers available on every `Layer` (including trait objects).
impl dyn Layer + '_ {
    /// Total number of scalar parameters in the layer.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params("", &mut |_, p| n += p.value.numel());
        n
    }

    /// Collects the names of all parameters in visit order.
    pub fn param_names(&mut self) -> Vec<String> {
        let mut names = Vec::new();
        self.visit_params("", &mut |name, _| names.push(name.to_owned()));
        names
    }
}

/// Joins a parameter-path prefix with a component, avoiding a leading separator.
pub(crate) fn join_path(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_owned()
    } else {
        format!("{prefix}/{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_new_has_zero_grad() {
        let p = Param::new(Tensor::ones(&[2, 3]));
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
        assert_eq!(p.grad.dims(), &[2, 3]);
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::new(Tensor::ones(&[2]));
        p.grad = Tensor::ones(&[2]);
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn join_path_handles_empty_prefix() {
        assert_eq!(join_path("", "conv1"), "conv1");
        assert_eq!(join_path("block0", "conv1"), "block0/conv1");
    }
}
