use radar_tensor::Tensor;

use crate::layer::Layer;

/// A gradient-based optimizer that updates all parameters of a [`Layer`] tree.
///
/// State (momentum buffers, Adam moments) is indexed by the stable parameter visit
/// order, so the same optimizer instance must always be used with the same model.
pub trait Optimizer {
    /// Applies one update step using the gradients currently stored in the model.
    fn step(&mut self, model: &mut dyn Layer);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for a decay schedule).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with momentum and decoupled weight decay.
///
/// # Example
///
/// ```
/// use radar_nn::{Layer, Linear, Optimizer, Sgd};
/// use radar_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut model = Linear::new(&mut rng, 2, 2);
/// let mut opt = Sgd::new(0.1, 0.9, 0.0);
/// model.forward(&Tensor::ones(&[1, 2]), true);
/// model.backward(&Tensor::ones(&[1, 2]));
/// opt.step(&mut model);
/// assert_eq!(opt.learning_rate(), 0.1);
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Layer) {
        let mut idx = 0;
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        model.visit_params("", &mut |_, p| {
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(p.value.dims()));
            }
            let v = &mut velocity[idx];
            for ((vi, &gi), wi) in v
                .data_mut()
                .iter_mut()
                .zip(p.grad.data().iter())
                .zip(p.value.data().iter())
            {
                *vi = momentum * *vi + gi + wd * *wi;
            }
            p.value.add_scaled_inplace(v, -lr);
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard `beta` defaults (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Layer) {
        self.t += 1;
        let mut idx = 0;
        let (lr, b1, b2, eps, wd, t) = (
            self.lr,
            self.beta1,
            self.beta2,
            self.eps,
            self.weight_decay,
            self.t,
        );
        let (ms, vs) = (&mut self.m, &mut self.v);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        model.visit_params("", &mut |_, p| {
            if ms.len() <= idx {
                ms.push(Tensor::zeros(p.value.dims()));
                vs.push(Tensor::zeros(p.value.dims()));
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            for i in 0..p.value.numel() {
                let g = p.grad.data()[i] + wd * p.value.data()[i];
                m.data_mut()[i] = b1 * m.data()[i] + (1.0 - b1) * g;
                v.data_mut()[i] = b2 * v.data()[i] + (1.0 - b2) * g * g;
                let m_hat = m.data()[i] / bc1;
                let v_hat = v.data()[i] / bc2;
                p.value.data_mut()[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, SoftmaxCrossEntropy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Train a tiny linear classifier on a separable toy problem and check the loss drops.
    fn train_with<O: Optimizer>(mut opt: O) -> (f32, f32) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = Linear::new(&mut rng, 2, 2);
        let loss_fn = SoftmaxCrossEntropy::new();
        // Class 0 near (1, 0); class 1 near (-1, 0).
        let xs =
            Tensor::from_vec(vec![1.0, 0.1, 1.2, -0.2, -0.9, 0.2, -1.1, -0.1], &[4, 2]).unwrap();
        let labels = [0usize, 0, 1, 1];
        let initial = loss_fn.loss(&model.forward(&xs, false), &labels);
        for _ in 0..200 {
            model.zero_grad();
            let logits = model.forward(&xs, true);
            let (_, grad) = loss_fn.forward_backward(&logits, &labels);
            model.backward(&grad);
            opt.step(&mut model);
        }
        let fin = loss_fn.loss(&model.forward(&xs, false), &labels);
        (initial, fin)
    }

    #[test]
    fn sgd_reduces_loss() {
        let (initial, fin) = train_with(Sgd::new(0.5, 0.9, 0.0));
        assert!(fin < initial * 0.2, "initial {initial}, final {fin}");
    }

    #[test]
    fn adam_reduces_loss() {
        let (initial, fin) = train_with(Adam::new(0.05, 0.0));
        assert!(fin < initial * 0.2, "initial {initial}, final {fin}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Linear::new(&mut rng, 4, 4);
        let norm_before = {
            let mut n = 0.0;
            model.visit_params("", &mut |_, p| n += p.value.norm_sq());
            n
        };
        // Zero gradients + weight decay should shrink parameters.
        let mut opt = Sgd::new(0.1, 0.0, 0.1);
        for _ in 0..10 {
            model.zero_grad();
            opt.step(&mut model);
        }
        let mut norm_after = 0.0;
        model.visit_params("", &mut |_, p| norm_after += p.value.norm_sq());
        assert!(norm_after < norm_before);
    }

    #[test]
    fn set_learning_rate_updates() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn non_positive_lr_panics() {
        Sgd::new(0.0, 0.0, 0.0);
    }
}
