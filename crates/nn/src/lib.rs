//! From-scratch neural-network substrate for the RADAR reproduction.
//!
//! The RADAR paper evaluates its defense on 8-bit quantized ResNet-20 (CIFAR-10) and
//! ResNet-18 (ImageNet) models and needs, for the PBFA attacker, gradients of the loss
//! with respect to every weight. This crate provides exactly that, with no external
//! deep-learning dependency:
//!
//! * [`Layer`] — a trait-object-friendly layer abstraction with hand-derived forward and
//!   backward passes ([`Conv2d`], [`Linear`], [`BatchNorm2d`], [`Relu`], [`MaxPool2d`],
//!   [`GlobalAvgPool`], [`Flatten`], [`Sequential`], [`ResidualBlock`]).
//! * [`SoftmaxCrossEntropy`] — classification loss with its gradient.
//! * [`Sgd`] and [`Adam`] optimizers plus a small [`Trainer`] loop.
//! * [`resnet20`] / [`resnet18`] — faithful block structure of the paper's two models,
//!   with configurable base width so experiments stay laptop-scale.
//! * Parameter inspection ([`Param`], [`Layer::visit_params`]) used by the quantization
//!   and attack crates, and a simple binary checkpoint format ([`save_params`],
//!   [`load_params`]).
//!
//! # Example
//!
//! ```
//! use radar_nn::{resnet20, ResNetConfig, Layer};
//! use radar_tensor::Tensor;
//!
//! let mut model = resnet20(&ResNetConfig::tiny(10));
//! let x = Tensor::zeros(&[1, 3, 8, 8]);
//! let logits = model.forward(&x, false);
//! assert_eq!(logits.dims(), &[1, 10]);
//! ```

mod activations;
mod batchnorm;
mod conv;
mod init;
mod layer;
mod linear;
mod loss;
mod metrics;
mod optim;
mod pooling;
mod quantized;
mod resnet;
mod sequential;
mod serialize;
mod trainer;

pub use activations::Relu;
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use init::he_normal;
pub use layer::{Layer, Param};
pub use linear::Linear;
pub use loss::SoftmaxCrossEntropy;
pub use metrics::{accuracy, accuracy_with, argmax_rows, evaluate_logits, Accuracy};
pub use optim::{Adam, Optimizer, Sgd};
pub use pooling::{Flatten, GlobalAvgPool, MaxPool2d};
pub use quantized::{forward_quantized_with, QuantCursor, QuantView};
pub use resnet::{resnet18, resnet20, ResNetConfig, ResidualBlock};
pub use sequential::Sequential;
pub use serialize::{load_params, save_params, SerializeError};
pub use trainer::{TrainReport, Trainer};
