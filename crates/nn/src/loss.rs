use radar_tensor::Tensor;

/// Softmax cross-entropy loss over a batch of logits.
///
/// # Example
///
/// ```
/// use radar_nn::SoftmaxCrossEntropy;
/// use radar_tensor::Tensor;
///
/// let loss = SoftmaxCrossEntropy::new();
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 0.0, 2.0, 0.0], &[2, 3]).unwrap();
/// let (value, grad) = loss.forward_backward(&logits, &[0, 1]);
/// assert!(value > 0.0);
/// assert_eq!(grad.dims(), &[2, 3]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Creates the loss function.
    pub fn new() -> Self {
        SoftmaxCrossEntropy
    }

    /// Computes softmax probabilities row-wise (numerically stabilized).
    ///
    /// # Panics
    ///
    /// Panics if `logits` is not 2-D.
    pub fn softmax(&self, logits: &Tensor) -> Tensor {
        assert_eq!(
            logits.shape().rank(),
            2,
            "softmax expects (N, classes), got {}",
            logits.shape()
        );
        let (n, c) = (logits.dims()[0], logits.dims()[1]);
        let mut out = vec![0.0f32; n * c];
        for i in 0..n {
            let row = &logits.data()[i * c..(i + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|&x| (x - m).exp()).collect();
            let sum: f32 = exps.iter().sum();
            for j in 0..c {
                out[i * c + j] = exps[j] / sum;
            }
        }
        Tensor::from_vec(out, &[n, c]).expect("softmax output shape is consistent")
    }

    /// Computes the mean cross-entropy loss for integer class labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the batch size or any label is out of range.
    pub fn loss(&self, logits: &Tensor, labels: &[usize]) -> f32 {
        let probs = self.softmax(logits);
        let (n, c) = (logits.dims()[0], logits.dims()[1]);
        assert_eq!(
            labels.len(),
            n,
            "label count {} != batch size {n}",
            labels.len()
        );
        let mut total = 0.0;
        for (i, &label) in labels.iter().enumerate() {
            assert!(label < c, "label {label} out of range for {c} classes");
            total -= (probs.data()[i * c + label] + 1e-12).ln();
        }
        total / n as f32
    }

    /// Computes the loss value and the gradient of the mean loss with respect to the
    /// logits in one pass.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`loss`](Self::loss).
    pub fn forward_backward(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        let probs = self.softmax(logits);
        let (n, c) = (logits.dims()[0], logits.dims()[1]);
        assert_eq!(
            labels.len(),
            n,
            "label count {} != batch size {n}",
            labels.len()
        );
        let mut grad = probs.clone().into_vec();
        let mut total = 0.0;
        for (i, &label) in labels.iter().enumerate() {
            assert!(label < c, "label {label} out of range for {c} classes");
            total -= (probs.data()[i * c + label] + 1e-12).ln();
            grad[i * c + label] -= 1.0;
        }
        for g in &mut grad {
            *g /= n as f32;
        }
        (
            total / n as f32,
            Tensor::from_vec(grad, &[n, c]).expect("loss grad shape is consistent"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = loss.softmax(&logits);
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(&[4, 10]);
        let l = loss.loss(&logits, &[0, 3, 5, 9]);
        assert!((l - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0], &[1, 3]).unwrap();
        assert!(loss.loss(&logits, &[0]) < 1e-3);
        assert!(loss.loss(&logits, &[1]) > 5.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![0.5, -0.2, 1.0, 0.1, 0.0, -1.0], &[2, 3]).unwrap();
        let labels = [2usize, 0usize];
        let (base, grad) = loss.forward_backward(&logits, &labels);
        let eps = 1e-3;
        for idx in 0..6 {
            let mut l2 = logits.clone();
            l2.data_mut()[idx] += eps;
            let plus = loss.loss(&l2, &labels);
            let fd = (plus - base) / eps;
            assert!(
                (grad.data()[idx] - fd).abs() < 1e-2,
                "idx {idx}: {} vs {fd}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let loss = SoftmaxCrossEntropy::new();
        loss.loss(&Tensor::zeros(&[1, 3]), &[3]);
    }
}
