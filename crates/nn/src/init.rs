//! Weight initialization helpers.

use radar_tensor::Tensor;
use rand::Rng;

/// He (Kaiming) normal initialization: elements drawn from `N(0, 2 / fan_in)`.
///
/// `fan_in` is the number of input connections per output unit (for a convolution,
/// `C_in * K * K`; for a linear layer, the input feature count).
///
/// # Panics
///
/// Panics if `fan_in` is zero.
///
/// # Example
///
/// ```
/// use radar_nn::he_normal;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let w = he_normal(&mut rng, &[16, 3, 3, 3], 27);
/// assert_eq!(w.numel(), 16 * 27);
/// ```
pub fn he_normal<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "fan_in must be non-zero");
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::rand_normal(rng, dims, 0.0, std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn he_normal_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(42);
        let w = he_normal(&mut rng, &[10_000], 8);
        let mean = w.mean();
        let var = w
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / 10_000.0;
        let expected = 2.0 / 8.0;
        assert!(
            (var - expected).abs() < 0.05,
            "var {var} vs expected {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "fan_in must be non-zero")]
    fn zero_fan_in_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        he_normal(&mut rng, &[4], 0);
    }
}
