//! Borrowed quantized-weight views for the native inference path.
//!
//! The RADAR threat model stores convolution and linear weights as 8-bit two's-
//! complement values in DRAM; the quantized-native forward path executes straight off
//! those bytes. A [`QuantView`] is one layer's borrowed weight panel (raw `&[i8]`
//! values plus scale and shape); a [`QuantCursor`] streams the views to the model's
//! layers in forward order, so
//! [`Layer::forward_quantized`](crate::Layer::forward_quantized) never touches the
//! float parameters. The consuming layers hand each view's `values` slice directly to
//! the integer GEMM kernels in `radar-tensor` (`gemm_i8_requant` /
//! `linear_i8_requant`): i8×i8 products accumulate in `i32` and the view's `scale`
//! is folded with the activation scale in the requantization epilogue, so no `f32`
//! multiply touches the weight bytes. See `docs/KERNELS.md` for the full pipeline.
//!
//! # Equivalence guarantee
//!
//! For integer-valued weights at unit scale and activations whose values quantize
//! exactly at a power-of-two scale (any dyadic values of magnitude ≤ 127 × the
//! activation scale), the quantized forward pass is **bit-identical** to the float
//! forward pass — both compute exact integer arithmetic below the `f32` mantissa
//! limit. For general scales the paths agree to the requantization rounding
//! (`radar-quant`'s `native_equivalence` tests pin argmax-level agreement).

use radar_tensor::Tensor;

/// One borrowed 8-bit quantized weight tensor: raw values in storage order plus the
/// per-tensor dequantization scale (`float ≈ i8 * scale`) and the logical shape.
///
/// The view does not own the bytes — they may live in a `QuantizedTensor`, a serving
/// worker's fetch arena, or any other buffer holding the layer's DRAM image.
#[derive(Debug, Clone, Copy)]
pub struct QuantView<'a> {
    /// The stored two's-complement weight values, row-major.
    pub values: &'a [i8],
    /// Per-tensor dequantization scale; must be positive.
    pub scale: f32,
    /// Logical tensor shape (e.g. `[C_out, C_in, K, K]` for a convolution).
    pub dims: &'a [usize],
}

impl<'a> QuantView<'a> {
    /// Creates a view, checking that the value count matches the shape.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` does not equal the shape's element count or `scale`
    /// is not positive.
    pub fn new(values: &'a [i8], scale: f32, dims: &'a [usize]) -> Self {
        let numel: usize = dims.iter().product();
        assert_eq!(
            values.len(),
            numel,
            "quantized view holds {} values but the shape {:?} needs {numel}",
            values.len(),
            dims
        );
        assert!(scale > 0.0, "quantized view scale must be positive");
        QuantView {
            values,
            scale,
            dims,
        }
    }

    /// Number of weights in the view.
    pub fn numel(&self) -> usize {
        self.values.len()
    }
}

/// Streams [`QuantView`]s to a model's weight-bearing layers in forward order.
///
/// The cursor is position-based: each `Conv2d`/`Linear` takes the next view and
/// asserts its shape, so a model whose forward order has drifted from the order the
/// views were collected in fails loudly instead of silently computing with the wrong
/// weights. After a full forward pass the caller checks [`consumed`](Self::consumed)
/// against the view count to catch layers that fell back to their float parameters.
#[derive(Debug)]
pub struct QuantCursor<'a> {
    views: &'a [QuantView<'a>],
    next: usize,
}

impl<'a> QuantCursor<'a> {
    /// Creates a cursor over `views`, ordered as the model's forward pass consumes
    /// them (which for every layer in this crate equals parameter visit order).
    pub fn new(views: &'a [QuantView<'a>]) -> Self {
        QuantCursor { views, next: 0 }
    }

    /// Takes the next view, asserting it has the shape the consuming layer expects.
    ///
    /// # Panics
    ///
    /// Panics if the views are exhausted or the next view's shape differs from
    /// `expect_dims` — both symptoms of a forward order that desynchronized from the
    /// view collection order.
    pub fn take(&mut self, expect_dims: &[usize]) -> QuantView<'a> {
        assert!(
            self.next < self.views.len(),
            "quantized weight views exhausted after {} layers — model forward order \
             does not match the collected views",
            self.next
        );
        let view = self.views[self.next];
        assert_eq!(
            view.dims, expect_dims,
            "quantized view {} has shape {:?} but the consuming layer expects {:?} — \
             model forward order does not match the collected views",
            self.next, view.dims, expect_dims
        );
        self.next += 1;
        view
    }

    /// Number of views taken so far.
    pub fn consumed(&self) -> usize {
        self.next
    }

    /// Number of views not yet taken.
    pub fn remaining(&self) -> usize {
        self.views.len() - self.next
    }
}

/// Convenience for tests and small harnesses: runs `layer` on `input` in quantized
/// mode with exactly the given views, asserting every view is consumed.
///
/// # Panics
///
/// Panics if the model consumes fewer views than provided (a weight-bearing layer
/// silently fell back to its float parameters).
pub fn forward_quantized_with(
    layer: &mut dyn crate::Layer,
    input: &Tensor,
    views: &[QuantView<'_>],
) -> Tensor {
    let mut cursor = QuantCursor::new(views);
    let out = layer.forward_quantized(input, &mut cursor);
    assert_eq!(
        cursor.remaining(),
        0,
        "{} quantized weight views were never consumed — a weight-bearing layer fell \
         back to its float parameters",
        cursor.remaining()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_checks_shape_and_scale() {
        let values = [1i8, 2, 3, 4];
        let v = QuantView::new(&values, 0.5, &[2, 2]);
        assert_eq!(v.numel(), 4);
    }

    #[test]
    #[should_panic(expected = "needs 6")]
    fn view_rejects_mismatched_shape() {
        QuantView::new(&[1i8, 2], 1.0, &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn view_rejects_non_positive_scale() {
        QuantView::new(&[1i8], 0.0, &[1]);
    }

    #[test]
    fn cursor_streams_in_order_and_counts() {
        let a = [1i8, 2];
        let b = [3i8];
        let views = [QuantView::new(&a, 1.0, &[2]), QuantView::new(&b, 1.0, &[1])];
        let mut cursor = QuantCursor::new(&views);
        assert_eq!(cursor.remaining(), 2);
        assert_eq!(cursor.take(&[2]).values, &a);
        assert_eq!(cursor.take(&[1]).values, &b);
        assert_eq!(cursor.consumed(), 2);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn cursor_rejects_out_of_order_consumption() {
        let a = [1i8, 2];
        let views = [QuantView::new(&a, 1.0, &[2])];
        QuantCursor::new(&views).take(&[1, 2]);
    }

    #[test]
    #[should_panic(expected = "views exhausted")]
    fn cursor_rejects_overconsumption() {
        QuantCursor::new(&[]).take(&[1]);
    }
}
