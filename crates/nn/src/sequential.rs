use radar_tensor::Tensor;

use crate::layer::{join_path, Layer, Param};
use crate::quantized::QuantCursor;

/// A container that applies layers in order and back-propagates in reverse order.
///
/// # Example
///
/// ```
/// use radar_nn::{Layer, Linear, Relu, Sequential};
/// use radar_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut model = Sequential::new();
/// model.push(Linear::new(&mut rng, 4, 8));
/// model.push(Relu::new());
/// model.push(Linear::new(&mut rng, 8, 2));
/// let y = model.forward(&Tensor::zeros(&[3, 4]), false);
/// assert_eq!(y.dims(), &[3, 2]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layers.len())
            .finish()
    }
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the container.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    fn forward_quantized(&mut self, input: &Tensor, weights: &mut QuantCursor<'_>) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward_quantized(&x, weights);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let path = join_path(prefix, &format!("{}{}", layer.name(), i));
            layer.visit_params(&path, f);
        }
    }

    fn visit_buffers(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Vec<f32>)) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let path = join_path(prefix, &format!("{}{}", layer.name(), i));
            layer.visit_buffers(&path, f);
        }
    }

    fn name(&self) -> &str {
        "sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_backward_chain() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Sequential::new();
        model.push(Linear::new(&mut rng, 4, 8));
        model.push(Relu::new());
        model.push(Linear::new(&mut rng, 8, 2));

        let x = Tensor::rand_normal(&mut rng, &[3, 4], 0.0, 1.0);
        let y = model.forward(&x, true);
        assert_eq!(y.dims(), &[3, 2]);
        let dx = model.backward(&Tensor::ones(&[3, 2]));
        assert_eq!(dx.dims(), &[3, 4]);
    }

    #[test]
    fn param_paths_are_prefixed_by_layer_index() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Sequential::new();
        model.push(Linear::new(&mut rng, 2, 2));
        model.push(Relu::new());
        model.push(Linear::new(&mut rng, 2, 2));
        let names = (&mut model as &mut dyn Layer).param_names();
        assert_eq!(
            names,
            vec![
                "linear0/weight",
                "linear0/bias",
                "linear2/weight",
                "linear2/bias"
            ]
        );
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Sequential::new();
        model.push(Linear::new(&mut rng, 2, 2));
        let x = Tensor::ones(&[1, 2]);
        model.forward(&x, true);
        model.backward(&Tensor::ones(&[1, 2]));
        model.zero_grad();
        model.visit_params("", &mut |_, p| {
            assert!(p.grad.data().iter().all(|&g| g == 0.0))
        });
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut model = Sequential::new();
        assert!(model.is_empty());
        let x = Tensor::ones(&[2, 2]);
        assert_eq!(model.forward(&x, false), x);
    }
}
