use radar_tensor::Tensor;

use crate::layer::{Layer, Param};

/// 2-D max pooling with a square window.
///
/// # Example
///
/// ```
/// use radar_nn::{Layer, MaxPool2d};
/// use radar_tensor::Tensor;
///
/// let mut pool = MaxPool2d::new(2, 2);
/// let y = pool.forward(&Tensor::zeros(&[1, 3, 8, 8]), false);
/// assert_eq!(y.dims(), &[1, 3, 4, 4]);
/// ```
#[derive(Debug)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    cache: Option<(Vec<usize>, [usize; 4], [usize; 2])>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given window size and stride.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be non-zero"
        );
        MaxPool2d {
            kernel,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(
            input.shape().rank(),
            4,
            "MaxPool2d expects (N, C, H, W), got {}",
            input.shape()
        );
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let ho = (h - self.kernel) / self.stride + 1;
        let wo = (w - self.kernel) / self.stride + 1;
        let mut out = vec![f32::NEG_INFINITY; n * c * ho * wo];
        let mut argmax = vec![0usize; n * c * ho * wo];
        for ni in 0..n {
            for ci in 0..c {
                for oh in 0..ho {
                    for ow in 0..wo {
                        let oidx = ((ni * c + ci) * ho + oh) * wo + ow;
                        for kh in 0..self.kernel {
                            for kw in 0..self.kernel {
                                let ih = oh * self.stride + kh;
                                let iw = ow * self.stride + kw;
                                let iidx = ((ni * c + ci) * h + ih) * w + iw;
                                if input.data()[iidx] > out[oidx] {
                                    out[oidx] = input.data()[iidx];
                                    argmax[oidx] = iidx;
                                }
                            }
                        }
                    }
                }
            }
        }
        self.cache = Some((argmax, [n, c, h, w], [ho, wo]));
        Tensor::from_vec(out, &[n, c, ho, wo]).expect("maxpool output shape is consistent")
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let (argmax, dims, _) = self
            .cache
            .as_ref()
            .expect("MaxPool2d::backward called before forward");
        let [n, c, h, w] = *dims;
        let mut dx = vec![0.0f32; n * c * h * w];
        for (o, &src) in argmax.iter().enumerate() {
            dx[src] += grad_output.data()[o];
        }
        Tensor::from_vec(dx, &[n, c, h, w]).expect("maxpool grad shape is consistent")
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(&str, &mut Param)) {}

    fn name(&self) -> &str {
        "maxpool2d"
    }
}

/// Global average pooling: `(N, C, H, W)` → `(N, C)`.
///
/// # Example
///
/// ```
/// use radar_nn::{GlobalAvgPool, Layer};
/// use radar_tensor::Tensor;
///
/// let mut pool = GlobalAvgPool::new();
/// let y = pool.forward(&Tensor::ones(&[2, 4, 3, 3]), false);
/// assert_eq!(y.dims(), &[2, 4]);
/// assert!(y.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
/// ```
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    cached_dims: Option<[usize; 4]>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { cached_dims: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(
            input.shape().rank(),
            4,
            "GlobalAvgPool expects (N, C, H, W), got {}",
            input.shape()
        );
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let plane = h * w;
        let mut out = vec![0.0f32; n * c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                out[ni * c + ci] =
                    input.data()[base..base + plane].iter().sum::<f32>() / plane as f32;
            }
        }
        self.cached_dims = Some([n, c, h, w]);
        Tensor::from_vec(out, &[n, c]).expect("gap output shape is consistent")
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let [n, c, h, w] = self
            .cached_dims
            .expect("GlobalAvgPool::backward called before forward");
        let plane = h * w;
        let mut dx = vec![0.0f32; n * c * plane];
        for ni in 0..n {
            for ci in 0..c {
                let g = grad_output.data()[ni * c + ci] / plane as f32;
                let base = (ni * c + ci) * plane;
                for s in 0..plane {
                    dx[base + s] = g;
                }
            }
        }
        Tensor::from_vec(dx, &[n, c, h, w]).expect("gap grad shape is consistent")
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(&str, &mut Param)) {}

    fn name(&self) -> &str {
        "global_avg_pool"
    }
}

/// Flattens `(N, d1, d2, ...)` into `(N, d1*d2*...)`.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_dims: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert!(
            input.shape().rank() >= 2,
            "Flatten expects at least 2 dimensions"
        );
        self.cached_dims = Some(input.dims().to_vec());
        let n = input.dims()[0];
        let rest = input.numel() / n;
        input
            .reshape(&[n, rest])
            .expect("flatten reshape is consistent")
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let dims = self
            .cached_dims
            .as_ref()
            .expect("Flatten::backward called before forward");
        grad_output
            .reshape(dims)
            .expect("flatten backward reshape is consistent")
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(&str, &mut Param)) {}

    fn name(&self) -> &str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_maximum() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x, false);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        pool.forward(&x, false);
        let dx = pool.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap());
        assert_eq!(dx.data(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn global_avg_pool_averages() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = pool.forward(&x, false);
        assert_eq!(y.data(), &[2.5]);
        let dx = pool.backward(&Tensor::from_vec(vec![4.0], &[1, 1]).unwrap());
        assert!(dx.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn flatten_roundtrip() {
        let mut fl = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 5]);
        let y = fl.forward(&x, false);
        assert_eq!(y.dims(), &[2, 60]);
        let back = fl.backward(&y);
        assert_eq!(back.dims(), &[2, 3, 4, 5]);
    }

    #[test]
    fn pools_have_no_params() {
        let mut a = MaxPool2d::new(2, 2);
        let mut b = GlobalAvgPool::new();
        let mut c = Flatten::new();
        assert_eq!((&mut a as &mut dyn Layer).param_count(), 0);
        assert_eq!((&mut b as &mut dyn Layer).param_count(), 0);
        assert_eq!((&mut c as &mut dyn Layer).param_count(), 0);
    }
}
