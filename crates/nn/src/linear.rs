use radar_tensor::{gemm_threads, linear_i8_requant, quantize_activations, Tensor};
use rand::Rng;

use crate::init::he_normal;
use crate::layer::{join_path, Layer, Param};
use crate::quantized::QuantCursor;

/// A fully-connected layer: `y = x W^T + b` with `x: (N, in)`, `W: (out, in)`,
/// `b: (out)`.
///
/// # Example
///
/// ```
/// use radar_nn::{Layer, Linear};
/// use radar_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut fc = Linear::new(&mut rng, 8, 4);
/// let y = fc.forward(&Tensor::zeros(&[2, 8]), false);
/// assert_eq!(y.dims(), &[2, 4]);
/// ```
#[derive(Debug)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with He-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if `in_features` or `out_features` is zero.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "feature counts must be non-zero"
        );
        Linear {
            weight: Param::new(he_normal(rng, &[out_features, in_features], in_features)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable access to the weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Validates the input shape.
    fn check_input(&self, input: &Tensor) {
        assert_eq!(
            input.shape().rank(),
            2,
            "Linear expects (N, in), got {}",
            input.shape()
        );
        assert_eq!(
            input.dims()[1],
            self.in_features,
            "Linear input features {} != expected {}",
            input.dims()[1],
            self.in_features
        );
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.check_input(input);
        self.cached_input = Some(input.clone());
        let out = input.matmul(&self.weight.value.transpose2d());
        let n = out.dims()[0];
        let mut data = out.into_vec();
        for row in 0..n {
            for j in 0..self.out_features {
                data[row * self.out_features + j] += self.bias.value.data()[j];
            }
        }
        Tensor::from_vec(data, &[n, self.out_features]).expect("linear output shape is consistent")
    }

    fn forward_quantized(&mut self, input: &Tensor, weights: &mut QuantCursor<'_>) -> Tensor {
        self.check_input(input);
        let view = weights.take(&[self.out_features, self.in_features]);
        let n = input.dims()[0];
        // Integer dot-product kernel over the i8 weights in their natural (out, in)
        // order: activations quantize at a power-of-two scale, products accumulate in
        // i32, and the epilogue folds both scales plus the bias — no transpose, no
        // dequantized weight tensor, nothing cached (eval only).
        let (xq, a_scale) = quantize_activations(input.data());
        let data = linear_i8_requant(
            &xq,
            view.values,
            n,
            self.in_features,
            self.out_features,
            &[view.scale * a_scale],
            Some(self.bias.value.data()),
            gemm_threads(),
        );
        Tensor::from_vec(data, &[n, self.out_features]).expect("linear output shape is consistent")
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("Linear::backward called before forward");
        // dW = grad_out^T @ x ; db = sum over batch ; dx = grad_out @ W
        let grad_w = grad_output.transpose2d().matmul(input);
        self.weight.grad.add_scaled_inplace(&grad_w, 1.0);
        let grad_b = grad_output.sum_rows();
        self.bias.grad.add_scaled_inplace(&grad_b, 1.0);
        grad_output.matmul(&self.weight.value)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&join_path(prefix, "weight"), &mut self.weight);
        f(&join_path(prefix, "bias"), &mut self.bias);
    }

    fn name(&self) -> &str {
        "linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> Linear {
        let mut rng = StdRng::seed_from_u64(7);
        Linear::new(&mut rng, 3, 2)
    }

    #[test]
    fn forward_matches_manual_computation() {
        let mut fc = layer();
        // Overwrite weights with known values.
        fc.weight.value = Tensor::from_vec(vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.0], &[2, 3]).unwrap();
        fc.bias.value = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let y = fc.forward(&x, false);
        // y0 = 1*1 + 2*0 + 3*(-1) + 0.5 = -1.5 ; y1 = 1*2 + 2*1 + 3*0 - 0.5 = 3.5
        assert_eq!(y.data(), &[-1.5, 3.5]);
    }

    #[test]
    fn backward_gradient_matches_finite_difference() {
        let mut fc = layer();
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5], &[2, 3]).unwrap();
        // Loss = sum(y); dL/dy = ones.
        let y = fc.forward(&x, true);
        let ones = Tensor::ones(y.dims());
        fc.zero_grad();
        fc.forward(&x, true);
        let grad_in = fc.backward(&ones);

        // Finite differences on one weight and one input element.
        let eps = 1e-3;
        let base: f32 = fc.forward(&x, true).sum();

        let mut w_plus = fc.weight.value.clone();
        w_plus.data_mut()[1] += eps;
        let orig_w = std::mem::replace(&mut fc.weight.value, w_plus);
        let plus: f32 = fc.forward(&x, true).sum();
        fc.weight.value = orig_w;
        let fd_w = (plus - base) / eps;
        assert!(
            (fc.weight.grad.data()[1] - fd_w).abs() < 1e-2,
            "{} vs {}",
            fc.weight.grad.data()[1],
            fd_w
        );

        let mut x_plus = x.clone();
        x_plus.data_mut()[2] += eps;
        let plus_x: f32 = fc.forward(&x_plus, true).sum();
        let fd_x = (plus_x - base) / eps;
        assert!(
            (grad_in.data()[2] - fd_x).abs() < 1e-2,
            "{} vs {}",
            grad_in.data()[2],
            fd_x
        );
    }

    #[test]
    fn forward_quantized_matches_float_forward_on_integer_weights() {
        use crate::quantized::forward_quantized_with;
        use crate::QuantView;

        let mut fc = layer();
        let q: Vec<i8> = vec![1, 0, -1, 2, 1, 0];
        fc.weight.value = Tensor::from_vec(q.iter().map(|&v| v as f32).collect(), &[2, 3]).unwrap();
        fc.bias.value = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -0.5, 0.25, 4.0], &[2, 3]).unwrap();
        let float_out = fc.forward(&x, false);

        let dims = [2usize, 3];
        let views = [QuantView::new(&q, 1.0, &dims)];
        let quant_out = forward_quantized_with(&mut fc, &x, &views);
        assert_eq!(float_out.data(), quant_out.data());
        assert_eq!(quant_out.dims(), &[2, 2]);
    }

    #[test]
    fn visit_params_reports_weight_and_bias() {
        let mut fc = layer();
        let names = (&mut fc as &mut dyn Layer).param_names();
        assert_eq!(names, vec!["weight", "bias"]);
        assert_eq!((&mut fc as &mut dyn Layer).param_count(), 2 * 3 + 2);
    }

    #[test]
    #[should_panic(expected = "called before forward")]
    fn backward_before_forward_panics() {
        let mut fc = layer();
        fc.backward(&Tensor::zeros(&[1, 2]));
    }
}
