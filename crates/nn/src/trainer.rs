use radar_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::layer::Layer;
use crate::loss::SoftmaxCrossEntropy;
use crate::metrics::{accuracy, Accuracy};
use crate::optim::Optimizer;

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Final training-set accuracy.
    pub train_accuracy: Accuracy,
}

/// A minimal mini-batch training loop for image classifiers.
///
/// # Example
///
/// ```no_run
/// use radar_nn::{resnet20, ResNetConfig, Sgd, Trainer};
/// use radar_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut model = resnet20(&ResNetConfig::tiny(10));
/// let images = Tensor::zeros(&[64, 3, 16, 16]);
/// let labels = vec![0usize; 64];
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut trainer = Trainer::new(Sgd::new(0.05, 0.9, 1e-4), 16);
/// let report = trainer.fit(&mut model, &images, &labels, 2, &mut rng);
/// println!("final loss {:?}", report.epoch_losses.last());
/// ```
#[derive(Debug)]
pub struct Trainer<O: Optimizer> {
    optimizer: O,
    batch_size: usize,
    loss: SoftmaxCrossEntropy,
}

impl<O: Optimizer> Trainer<O> {
    /// Creates a trainer with the given optimizer and mini-batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(optimizer: O, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch_size must be non-zero");
        Trainer {
            optimizer,
            batch_size,
            loss: SoftmaxCrossEntropy::new(),
        }
    }

    /// Access to the underlying optimizer (e.g. to adjust the learning rate between
    /// epochs).
    pub fn optimizer_mut(&mut self) -> &mut O {
        &mut self.optimizer
    }

    /// Trains `model` on `(images, labels)` for `epochs` epochs, shuffling every epoch.
    ///
    /// # Panics
    ///
    /// Panics if the label count does not match the image count.
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        model: &mut dyn Layer,
        images: &Tensor,
        labels: &[usize],
        epochs: usize,
        rng: &mut R,
    ) -> TrainReport {
        let n = images.dims()[0];
        assert_eq!(
            labels.len(),
            n,
            "label count {} != image count {n}",
            labels.len()
        );
        let sample = images.numel() / n.max(1);
        let mut order: Vec<usize> = (0..n).collect();
        let mut report = TrainReport::default();

        for _ in 0..epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(self.batch_size) {
                let mut dims = images.dims().to_vec();
                dims[0] = chunk.len();
                let mut batch_data = Vec::with_capacity(chunk.len() * sample);
                let mut batch_labels = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    batch_data.extend_from_slice(&images.data()[i * sample..(i + 1) * sample]);
                    batch_labels.push(labels[i]);
                }
                let batch = Tensor::from_vec(batch_data, &dims).expect("batch shape is consistent");

                model.zero_grad();
                let logits = model.forward(&batch, true);
                let (loss_value, grad) = self.loss.forward_backward(&logits, &batch_labels);
                model.backward(&grad);
                self.optimizer.step(model);

                epoch_loss += loss_value;
                batches += 1;
            }
            report.epoch_losses.push(epoch_loss / batches.max(1) as f32);
        }
        report.train_accuracy = accuracy(model, images, labels, self.batch_size);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Relu, Sequential, Sgd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A linearly separable 2-class problem in 4 dimensions.
    fn toy_data(rng: &mut StdRng, n: usize) -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(n * 4);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { 1.5 } else { -1.5 };
            for _ in 0..4 {
                data.push(center + rng.gen_range(-0.5..0.5));
            }
            labels.push(class);
        }
        (Tensor::from_vec(data, &[n, 4]).unwrap(), labels)
    }

    #[test]
    fn training_reaches_high_accuracy_on_separable_data() {
        let mut rng = StdRng::seed_from_u64(0);
        let (images, labels) = toy_data(&mut rng, 64);
        let mut model = Sequential::new();
        model.push(Linear::new(&mut rng, 4, 8));
        model.push(Relu::new());
        model.push(Linear::new(&mut rng, 8, 2));

        let mut trainer = Trainer::new(Sgd::new(0.1, 0.9, 0.0), 16);
        let report = trainer.fit(&mut model, &images, &labels, 20, &mut rng);
        assert!(
            report.train_accuracy.ratio() > 0.95,
            "accuracy {}",
            report.train_accuracy
        );
        assert!(report.epoch_losses.last().unwrap() < &0.2);
        assert!(report.epoch_losses.first().unwrap() > report.epoch_losses.last().unwrap());
    }

    #[test]
    fn losses_recorded_per_epoch() {
        let mut rng = StdRng::seed_from_u64(1);
        let (images, labels) = toy_data(&mut rng, 16);
        let mut model = Sequential::new();
        model.push(Linear::new(&mut rng, 4, 2));
        let mut trainer = Trainer::new(Sgd::new(0.05, 0.0, 0.0), 8);
        let report = trainer.fit(&mut model, &images, &labels, 3, &mut rng);
        assert_eq!(report.epoch_losses.len(), 3);
    }

    #[test]
    #[should_panic(expected = "batch_size must be non-zero")]
    fn zero_batch_size_panics() {
        let _ = Trainer::new(Sgd::new(0.1, 0.0, 0.0), 0);
    }
}
