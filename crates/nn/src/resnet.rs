use radar_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::layer::{join_path, Layer, Param};
use crate::quantized::QuantCursor;
use crate::{BatchNorm2d, Conv2d, GlobalAvgPool, Linear, MaxPool2d, Relu, Sequential};

/// Configuration for the ResNet builders.
///
/// The paper uses ResNet-20 (CIFAR-10) and ResNet-18 (ImageNet) at their standard
/// widths. The block structure here is faithful; `base_width` scales the channel counts
/// so the reproduction's training and 100-round attack campaigns stay laptop-scale
/// (documented in DESIGN.md).
///
/// # Example
///
/// ```
/// use radar_nn::ResNetConfig;
///
/// let cfg = ResNetConfig::new(10, 16, 3, 42);
/// assert_eq!(cfg.num_classes, 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResNetConfig {
    /// Number of output classes.
    pub num_classes: usize,
    /// Channel count of the first stage (16 for the paper's ResNet-20, 64 for ResNet-18).
    pub base_width: usize,
    /// Number of input channels (3 for RGB images).
    pub in_channels: usize,
    /// Seed for weight initialization.
    pub seed: u64,
}

impl ResNetConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes`, `base_width` or `in_channels` is zero.
    pub fn new(num_classes: usize, base_width: usize, in_channels: usize, seed: u64) -> Self {
        assert!(
            num_classes > 0 && base_width > 0 && in_channels > 0,
            "config values must be non-zero"
        );
        ResNetConfig {
            num_classes,
            base_width,
            in_channels,
            seed,
        }
    }

    /// Paper-faithful ResNet-20 width (base 16).
    pub fn resnet20_paper(num_classes: usize) -> Self {
        Self::new(num_classes, 16, 3, 20)
    }

    /// Paper-faithful ResNet-18 width (base 64).
    pub fn resnet18_paper(num_classes: usize) -> Self {
        Self::new(num_classes, 64, 3, 18)
    }

    /// A very small configuration for unit tests (base width 4).
    pub fn tiny(num_classes: usize) -> Self {
        Self::new(num_classes, 4, 3, 7)
    }
}

/// A basic residual block: two 3×3 convolutions with batch norm, plus an identity or
/// 1×1-convolution shortcut, followed by a ReLU on the sum.
pub struct ResidualBlock {
    main: Sequential,
    shortcut: Option<Sequential>,
    relu: Relu,
}

impl std::fmt::Debug for ResidualBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidualBlock")
            .field("projection_shortcut", &self.shortcut.is_some())
            .finish()
    }
}

impl ResidualBlock {
    /// Creates a basic block mapping `in_channels` to `out_channels` with the given
    /// stride on the first convolution.
    ///
    /// A projection (1×1 convolution + batch norm) shortcut is used whenever the stride
    /// is not 1 or the channel count changes, matching the original ResNet design.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        stride: usize,
    ) -> Self {
        let mut main = Sequential::new();
        main.push(Conv2d::new(rng, in_channels, out_channels, 3, stride, 1));
        main.push(BatchNorm2d::new(out_channels));
        main.push(Relu::new());
        main.push(Conv2d::new(rng, out_channels, out_channels, 3, 1, 1));
        main.push(BatchNorm2d::new(out_channels));

        let shortcut = if stride != 1 || in_channels != out_channels {
            let mut s = Sequential::new();
            s.push(Conv2d::new(rng, in_channels, out_channels, 1, stride, 0));
            s.push(BatchNorm2d::new(out_channels));
            Some(s)
        } else {
            None
        };
        ResidualBlock {
            main,
            shortcut,
            relu: Relu::new(),
        }
    }

    /// Whether the block uses a projection shortcut.
    pub fn has_projection(&self) -> bool {
        self.shortcut.is_some()
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let main_out = self.main.forward(input, train);
        let short_out = match &mut self.shortcut {
            Some(s) => s.forward(input, train),
            None => input.clone(),
        };
        self.relu.forward(&main_out.add(&short_out), train)
    }

    fn forward_quantized(&mut self, input: &Tensor, weights: &mut QuantCursor<'_>) -> Tensor {
        // Same order as `visit_params`: main branch first, then the shortcut — the
        // cursor's shape checks fail loudly if the two ever drift apart.
        let main_out = self.main.forward_quantized(input, weights);
        let short_out = match &mut self.shortcut {
            Some(s) => s.forward_quantized(input, weights),
            None => input.clone(),
        };
        self.relu
            .forward_quantized(&main_out.add(&short_out), weights)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let g = self.relu.backward(grad_output);
        let g_main = self.main.backward(&g);
        let g_short = match &mut self.shortcut {
            Some(s) => s.backward(&g),
            None => g,
        };
        g_main.add(&g_short)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        self.main.visit_params(&join_path(prefix, "main"), f);
        if let Some(s) = &mut self.shortcut {
            s.visit_params(&join_path(prefix, "shortcut"), f);
        }
    }

    fn visit_buffers(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Vec<f32>)) {
        self.main.visit_buffers(&join_path(prefix, "main"), f);
        if let Some(s) = &mut self.shortcut {
            s.visit_buffers(&join_path(prefix, "shortcut"), f);
        }
    }

    fn name(&self) -> &str {
        "residual_block"
    }
}

fn make_stage<R: Rng + ?Sized>(
    rng: &mut R,
    blocks: usize,
    in_channels: usize,
    out_channels: usize,
    first_stride: usize,
) -> Sequential {
    let mut stage = Sequential::new();
    for b in 0..blocks {
        let (cin, stride) = if b == 0 {
            (in_channels, first_stride)
        } else {
            (out_channels, 1)
        };
        stage.push(ResidualBlock::new(rng, cin, out_channels, stride));
    }
    stage
}

/// Builds the CIFAR-style ResNet-20: a 3×3 stem, three stages of three basic blocks
/// (widths `w`, `2w`, `4w`), global average pooling and a linear classifier.
///
/// # Example
///
/// ```
/// use radar_nn::{resnet20, Layer, ResNetConfig};
/// use radar_tensor::Tensor;
///
/// let mut model = resnet20(&ResNetConfig::tiny(10));
/// let y = model.forward(&Tensor::zeros(&[1, 3, 16, 16]), false);
/// assert_eq!(y.dims(), &[1, 10]);
/// ```
pub fn resnet20(cfg: &ResNetConfig) -> Sequential {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let w = cfg.base_width;
    let mut model = Sequential::new();
    model.push(Conv2d::new(&mut rng, cfg.in_channels, w, 3, 1, 1));
    model.push(BatchNorm2d::new(w));
    model.push(Relu::new());
    model.push(make_stage(&mut rng, 3, w, w, 1));
    model.push(make_stage(&mut rng, 3, w, 2 * w, 2));
    model.push(make_stage(&mut rng, 3, 2 * w, 4 * w, 2));
    model.push(GlobalAvgPool::new());
    model.push(Linear::new(&mut rng, 4 * w, cfg.num_classes));
    model
}

/// Builds the ImageNet-style ResNet-18: a 7×7/stride-2 stem with 2×2 max pooling, four
/// stages of two basic blocks (widths `w`, `2w`, `4w`, `8w`), global average pooling and
/// a linear classifier.
///
/// # Example
///
/// ```
/// use radar_nn::{resnet18, Layer, ResNetConfig};
/// use radar_tensor::Tensor;
///
/// let mut model = resnet18(&ResNetConfig::tiny(100));
/// let y = model.forward(&Tensor::zeros(&[1, 3, 32, 32]), false);
/// assert_eq!(y.dims(), &[1, 100]);
/// ```
pub fn resnet18(cfg: &ResNetConfig) -> Sequential {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let w = cfg.base_width;
    let mut model = Sequential::new();
    model.push(Conv2d::new(&mut rng, cfg.in_channels, w, 7, 2, 3));
    model.push(BatchNorm2d::new(w));
    model.push(Relu::new());
    model.push(MaxPool2d::new(2, 2));
    model.push(make_stage(&mut rng, 2, w, w, 1));
    model.push(make_stage(&mut rng, 2, w, 2 * w, 2));
    model.push(make_stage(&mut rng, 2, 2 * w, 4 * w, 2));
    model.push(make_stage(&mut rng, 2, 4 * w, 8 * w, 2));
    model.push(GlobalAvgPool::new());
    model.push(Linear::new(&mut rng, 8 * w, cfg.num_classes));
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet20_output_shape_and_param_count() {
        let mut model = resnet20(&ResNetConfig::resnet20_paper(10));
        let y = model.forward(&Tensor::zeros(&[2, 3, 32, 32]), false);
        assert_eq!(y.dims(), &[2, 10]);
        // The paper's ResNet-20 has ~0.27 M parameters; ours should be in that range.
        let n = (&mut model as &mut dyn Layer).param_count();
        assert!(n > 250_000 && n < 300_000, "param count {n}");
    }

    #[test]
    fn resnet18_output_shape() {
        let mut model = resnet18(&ResNetConfig::tiny(100));
        let y = model.forward(&Tensor::zeros(&[1, 3, 48, 48]), false);
        assert_eq!(y.dims(), &[1, 100]);
    }

    #[test]
    fn resnet18_paper_width_has_millions_of_params() {
        let mut model = resnet18(&ResNetConfig::new(1000, 64, 3, 0));
        let n = (&mut model as &mut dyn Layer).param_count();
        // Real ResNet-18 has ~11.7 M parameters.
        assert!(n > 10_000_000 && n < 13_000_000, "param count {n}");
    }

    #[test]
    fn residual_block_identity_vs_projection() {
        let mut rng = StdRng::seed_from_u64(0);
        let same = ResidualBlock::new(&mut rng, 8, 8, 1);
        let proj = ResidualBlock::new(&mut rng, 8, 16, 2);
        assert!(!same.has_projection());
        assert!(proj.has_projection());
    }

    #[test]
    fn residual_block_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut block = ResidualBlock::new(&mut rng, 4, 8, 2);
        let x = Tensor::rand_normal(&mut rng, &[2, 4, 8, 8], 0.0, 1.0);
        let y = block.forward(&x, true);
        assert_eq!(y.dims(), &[2, 8, 4, 4]);
        let dx = block.backward(&Tensor::ones(y.dims()));
        assert_eq!(dx.dims(), x.dims());
    }

    #[test]
    fn end_to_end_gradient_flows_to_first_conv() {
        let mut model = resnet20(&ResNetConfig::tiny(5));
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::rand_normal(&mut rng, &[2, 3, 12, 12], 0.0, 1.0);
        model.zero_grad();
        let y = model.forward(&x, false);
        model.backward(&Tensor::ones(y.dims()));
        let mut first_conv_grad_norm = None;
        model.visit_params("", &mut |name, p| {
            if first_conv_grad_norm.is_none() && name.ends_with("weight") {
                first_conv_grad_norm = Some(p.grad.norm_sq());
            }
        });
        assert!(first_conv_grad_norm.expect("model has weights") > 0.0);
    }

    #[test]
    fn param_names_are_unique() {
        let mut model = resnet20(&ResNetConfig::tiny(10));
        let names = (&mut model as &mut dyn Layer).param_names();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate parameter paths");
    }
}
