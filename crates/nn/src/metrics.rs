use radar_tensor::Tensor;

use crate::layer::Layer;

/// Classification accuracy over a labelled set.
///
/// # Example
///
/// ```
/// use radar_nn::Accuracy;
///
/// let acc = Accuracy { correct: 30, total: 40 };
/// assert_eq!(acc.ratio(), 0.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Accuracy {
    /// Number of correctly classified samples.
    pub correct: usize,
    /// Total number of samples evaluated.
    pub total: usize,
}

impl Accuracy {
    /// Accuracy as a fraction in `[0, 1]`. Returns 0 when no samples were evaluated.
    pub fn ratio(&self) -> f32 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f32 / self.total as f32
        }
    }

    /// Accuracy as a percentage in `[0, 100]`.
    pub fn percent(&self) -> f32 {
        self.ratio() * 100.0
    }
}

impl std::fmt::Display for Accuracy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} ({:.2}%)",
            self.correct,
            self.total,
            self.percent()
        )
    }
}

/// Top-1 prediction per row of a `(N, classes)` logits tensor. The first maximum wins
/// on ties — the single source of argmax semantics for every accuracy number in the
/// workspace (batch evaluation here, per-request served accuracy in `radar-serve`).
///
/// # Panics
///
/// Panics if `logits` is not 2-D.
pub fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    assert_eq!(
        logits.shape().rank(),
        2,
        "expected (N, classes) logits, got {}",
        logits.shape()
    );
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    let data = logits.data();
    (0..n)
        .map(|i| {
            let row = &data[i * c..(i + 1) * c];
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            best
        })
        .collect()
}

/// Counts correct top-1 predictions given logits and integer labels.
///
/// # Panics
///
/// Panics if `logits` is not 2-D or the label count differs from the batch size.
pub fn evaluate_logits(logits: &Tensor, labels: &[usize]) -> Accuracy {
    let predictions = argmax_rows(logits);
    assert_eq!(
        labels.len(),
        predictions.len(),
        "label count {} != batch size {}",
        labels.len(),
        predictions.len()
    );
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    Accuracy {
        correct,
        total: predictions.len(),
    }
}

/// Evaluates top-1 accuracy of `model` on `(images, labels)` in evaluation mode,
/// processing `batch_size` samples at a time.
///
/// `images` is `(N, C, H, W)` and `labels.len()` must equal `N`.
///
/// # Panics
///
/// Panics if the label count does not match the image count or `batch_size` is zero.
pub fn accuracy(
    model: &mut dyn Layer,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Accuracy {
    accuracy_with(
        |batch| model.forward(batch, false),
        images,
        labels,
        batch_size,
    )
}

/// [`accuracy`] over an arbitrary forward function — the seam the quantized-native
/// path evaluates through.
///
/// One scratch buffer backs every batch-slice tensor: the allocation is threaded
/// through [`Tensor::into_vec`] and reused across iterations, so batched evaluation
/// does not allocate per batch (visible in serving-worker profiles).
///
/// # Panics
///
/// Panics if the label count does not match the image count or `batch_size` is zero.
pub fn accuracy_with(
    mut forward: impl FnMut(&Tensor) -> Tensor,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Accuracy {
    assert!(batch_size > 0, "batch_size must be non-zero");
    let n = images.dims()[0];
    assert_eq!(
        labels.len(),
        n,
        "label count {} != image count {n}",
        labels.len()
    );
    let sample = images.numel() / n.max(1);
    let mut total = Accuracy::default();
    let mut scratch: Vec<f32> = Vec::with_capacity(batch_size.min(n) * sample);
    let mut start = 0;
    while start < n {
        let end = (start + batch_size).min(n);
        let count = end - start;
        let mut dims = images.dims().to_vec();
        dims[0] = count;
        scratch.clear();
        scratch.extend_from_slice(&images.data()[start * sample..end * sample]);
        let batch = Tensor::from_vec(std::mem::take(&mut scratch), &dims)
            .expect("batch slicing preserves shape");
        let logits = forward(&batch);
        scratch = batch.into_vec();
        let acc = evaluate_logits(&logits, &labels[start..end]);
        total.correct += acc.correct;
        total.total += acc.total;
        start = end;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn evaluate_logits_counts_correct_predictions() {
        let logits = Tensor::from_vec(vec![2.0, 1.0, 0.0, 0.0, 1.0, 2.0], &[2, 3]).unwrap();
        let acc = evaluate_logits(&logits, &[0, 2]);
        assert_eq!(acc.correct, 2);
        let acc = evaluate_logits(&logits, &[1, 1]);
        assert_eq!(acc.correct, 0);
    }

    #[test]
    fn ratio_and_percent() {
        let acc = Accuracy {
            correct: 1,
            total: 4,
        };
        assert_eq!(acc.ratio(), 0.25);
        assert_eq!(acc.percent(), 25.0);
        assert_eq!(Accuracy::default().ratio(), 0.0);
    }

    #[test]
    fn accuracy_batches_cover_all_samples() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Sequential::new();
        model.push(Linear::new(&mut rng, 4, 3));
        let images = Tensor::rand_normal(&mut rng, &[10, 4], 0.0, 1.0);
        let labels = vec![0usize; 10];
        let acc = accuracy(&mut model, &images, &labels, 3);
        assert_eq!(acc.total, 10);
    }

    #[test]
    fn display_includes_percentage() {
        let s = Accuracy {
            correct: 3,
            total: 4,
        }
        .to_string();
        assert!(s.contains("75.00%"), "{s}");
    }
}
