//! End-to-end linter tests: every rule catches its seeded fixture violation, and
//! the real workspace is clean.
//!
//! Each directory under `tests/fixtures/<rule-id>/` is a miniature workspace tree
//! containing exactly one seeded violation of that rule, placed at a path the
//! rule's scope matches. Running the real `lints.toml` against the fixture must
//! flag it; running against the actual workspace must flag nothing. Together the
//! two directions prove the rules both *fire* and *don't cry wolf*.

use std::path::{Path, PathBuf};

use radar_analyze::analyze_with_config_file;

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn lints_toml() -> PathBuf {
    manifest_dir().join("lints.toml")
}

fn run_fixture(rule_id: &str) -> radar_analyze::AnalysisReport {
    let root = manifest_dir().join("tests/fixtures").join(rule_id);
    assert!(root.is_dir(), "missing fixture tree {}", root.display());
    analyze_with_config_file(&root, &lints_toml())
        .unwrap_or_else(|e| panic!("fixture {rule_id} failed to analyze: {e}"))
}

fn assert_fires(rule_id: &str) {
    let report = run_fixture(rule_id);
    let rule = report
        .rule(rule_id)
        .unwrap_or_else(|| panic!("rule {rule_id} missing from report"));
    assert!(
        !rule.violations.is_empty(),
        "rule {rule_id} did not catch its seeded fixture violation"
    );
}

#[test]
fn every_rule_catches_its_seeded_fixture_violation() {
    for rule_id in [
        "hot-path-purity",
        "hot-path-alloc",
        "determinism",
        "atomics-justify",
        "atomics-barrier",
        "unsafe-forbid",
        "no-unwrap-worker",
        "worker-snapshot-only",
        "secret-hygiene",
        "obs-off-purity",
    ] {
        assert_fires(rule_id);
    }
}

#[test]
fn determinism_rule_confines_the_wall_clock_to_the_obs_crate() {
    // The allowlist names `crates/obs/src/` and nothing else: the only sanctioned
    // `Instant::now` / `.elapsed(` hits in the real workspace must come from the
    // observability crate's clock module.
    let root = manifest_dir()
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let report = analyze_with_config_file(&root, &lints_toml()).expect("workspace analyzes");
    let determinism = report.rule("determinism").expect("rule exists");
    assert!(determinism.violations.is_empty());
    assert!(
        !determinism.allowed.is_empty(),
        "the obs clock should exercise the allowlist"
    );
    for hit in &determinism.allowed {
        assert!(
            hit.file.contains("crates/obs/src/"),
            "wall-clock read outside crates/obs: {}:{}",
            hit.file,
            hit.line
        );
    }
}

#[test]
fn alloc_rule_is_function_scoped() {
    let report = run_fixture("hot-path-alloc");
    let rule = report.rule("hot-path-alloc").expect("rule exists");
    // Only the allocation inside the hot function fires; `cold_setup` does not.
    assert_eq!(rule.violations.len(), 1, "got: {:#?}", rule.violations);
    assert!(rule.violations[0].line <= 6);
}

#[test]
fn barrier_rule_fires_even_when_the_justification_rule_is_satisfied() {
    let report = run_fixture("atomics-barrier");
    let justify = report.rule("atomics-justify").expect("rule exists");
    assert!(
        justify.violations.is_empty(),
        "the fixture's `// relaxed:` comment satisfies atomics-justify: {:#?}",
        justify.violations
    );
    let barrier = report.rule("atomics-barrier").expect("rule exists");
    assert!(!barrier.violations.is_empty());
}

#[test]
fn unwrap_rule_skips_test_regions() {
    let report = run_fixture("no-unwrap-worker");
    let rule = report.rule("no-unwrap-worker").expect("rule exists");
    // Exactly the non-test unwrap fires; the one inside #[cfg(test)] does not.
    assert_eq!(rule.violations.len(), 1, "got: {:#?}", rule.violations);
}

#[test]
fn the_real_workspace_is_clean() {
    let root = manifest_dir()
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let report = analyze_with_config_file(&root, &lints_toml()).expect("workspace analyzes");
    assert!(
        report.files_scanned > 50,
        "scanned {}",
        report.files_scanned
    );
    let failing: Vec<String> = report
        .rules
        .iter()
        .filter(|r| !r.violations.is_empty())
        .map(|r| format!("{}: {:#?}", r.id, r.violations))
        .collect();
    assert!(
        report.clean(),
        "the workspace violates its own lints:\n{}",
        failing.join("\n")
    );
    // The reasoned allowlist is actually exercised (telemetry/bench timing).
    let determinism = report.rule("determinism").expect("rule exists");
    assert!(!determinism.allowed.is_empty());
}
