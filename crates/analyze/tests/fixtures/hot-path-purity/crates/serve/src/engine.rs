// Fixture: a worker step that falls back to float weights mid-serve.
// Seeded violation for the `hot-path-purity` rule.
fn worker_step(q: &QuantizedTensor) -> Tensor {
    q.dequantize()
}
