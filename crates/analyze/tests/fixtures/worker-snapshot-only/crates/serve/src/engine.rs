// Fixture: a worker that reaches around the verified snapshot and reads a layer
// straight out of DRAM. Seeded violation for the `worker-snapshot-only` rule.
fn worker_loop(dram: &WeightDram, buf: &mut Vec<i8>) {
    for layer in 0..dram.num_layers() {
        dram.read_layer_into(layer, buf);
    }
}
