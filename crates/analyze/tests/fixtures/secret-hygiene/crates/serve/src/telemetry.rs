// Seeded violation: serving telemetry logging raw key bits — key material leaving
// radar-core, exactly what the secret-hygiene rule exists to catch.

pub fn record_epoch_roll(key: &radar_core::SecretKey) -> String {
    format!("rolled to key {:04x}", key.expose_bits())
}
