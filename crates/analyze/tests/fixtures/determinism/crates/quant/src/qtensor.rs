// Fixture: ambient wall-clock in a logical (non-telemetry) path.
// Seeded violation for the `determinism` rule.
fn entropy_seed() -> u64 {
    let started = std::time::Instant::now();
    started.elapsed().as_nanos() as u64
}
