// Fixture: a ticket publish with Relaxed ordering. The justification comment
// satisfies `atomics-justify`, but `atomics-barrier` forbids Relaxed in the sync
// protocol regardless — rule layering is the point of this fixture.
use std::sync::atomic::{AtomicUsize, Ordering};

fn publish(ticket: &AtomicUsize, next: usize) {
    // relaxed: (wrong) the ticket hand-off needs Release, a comment cannot fix it
    ticket.store(next, Ordering::Relaxed);
}
