// Fixture: a relaxed atomic with no `// relaxed:` justification comment.
// Seeded violation for the `atomics-justify` rule.
use std::sync::atomic::{AtomicUsize, Ordering};

fn bump(counter: &AtomicUsize) {
    counter.fetch_add(1, Ordering::Relaxed);
}
