// Fixture: a per-batch verify step that allocates its accumulator every call.
// Seeded violation for the `hot-path-alloc` rule (function-scoped).
fn verify_layer_values_with_scratch(values: &[i8]) -> Vec<i32> {
    let mut acc = Vec::new();
    acc.push(values.len() as i32);
    acc
}

fn cold_setup() -> Vec<i32> {
    // Same token outside the hot functions is fine — the rule is function-scoped.
    Vec::new()
}
