// Fixture: allocation in the gated instrumentation facade.
// Seeded violation for the `obs-off-purity` rule: the hook layer must reduce to
// one branch when the level gates it off, so allocation constructors are banned
// here even when they sit behind the branch.
pub fn span_labels(n: usize) -> Vec<String> {
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        labels.push(format!("span-{i}"));
    }
    labels
}
