// Fixture: an unwrap in serve recovery code — a panic here tears down a scoped
// worker thread mid-service. Seeded violation for the `no-unwrap-worker` rule.
fn drain(rx: &std::sync::mpsc::Receiver<u8>) -> u8 {
    rx.recv().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        // The rule skips #[cfg(test)] regions; this unwrap must not be flagged.
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
