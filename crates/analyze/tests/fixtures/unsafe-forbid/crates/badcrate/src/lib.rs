// Fixture: a crate root that neither carries the unsafe-forbidding root
// attribute nor opts into the workspace lint table via its manifest.
// Seeded violation for the `unsafe-forbid` rule.
pub fn nothing() {}
