//! Analysis results, their JSON serialization and the human-readable table.
//!
//! The JSON writer is hand-rolled (the linter is dependency-free by design); the
//! schema is stable so CI artifacts remain diffable across runs.

use std::fmt::Write as _;

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The token (or attribute) that matched.
    pub token: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// A token hit that an allowlist entry exempted, recorded with its reason so the
/// report shows *why* each exemption exists.
#[derive(Debug, Clone)]
pub struct AllowedHit {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The exempted token.
    pub token: String,
    /// The allowlist entry's reason.
    pub reason: String,
}

/// Per-rule results.
#[derive(Debug, Clone)]
pub struct RuleSummary {
    /// Rule identifier.
    pub id: String,
    /// Rule kind name.
    pub kind: String,
    /// Rule description.
    pub description: String,
    /// Unallowlisted violations.
    pub violations: Vec<Finding>,
    /// Allowlisted hits.
    pub allowed: Vec<AllowedHit>,
}

/// The full analysis report.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Workspace root analyzed.
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Per-rule results, in declaration order.
    pub rules: Vec<RuleSummary>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl AnalysisReport {
    /// Total unallowlisted violations across all rules.
    pub fn total_violations(&self) -> usize {
        self.rules.iter().map(|r| r.violations.len()).sum()
    }

    /// Whether the workspace is clean under every rule.
    pub fn clean(&self) -> bool {
        self.total_violations() == 0
    }

    /// The findings for one rule, by id (used by fixture tests).
    pub fn rule(&self, id: &str) -> Option<&RuleSummary> {
        self.rules.iter().find(|r| r.id == id)
    }

    /// Serializes the report as stable, pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"root\": \"{}\",", json_escape(&self.root));
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"total_violations\": {},", self.total_violations());
        out.push_str("  \"rules\": [\n");
        for (i, rule) in self.rules.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"id\": \"{}\",", json_escape(&rule.id));
            let _ = writeln!(out, "      \"kind\": \"{}\",", json_escape(&rule.kind));
            let _ = writeln!(
                out,
                "      \"description\": \"{}\",",
                json_escape(&rule.description)
            );
            out.push_str("      \"violations\": [");
            for (j, v) in rule.violations.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}\n        {{\"file\": \"{}\", \"line\": {}, \"token\": \"{}\", \"excerpt\": \"{}\"}}",
                    if j == 0 { "" } else { "," },
                    json_escape(&v.file),
                    v.line,
                    json_escape(&v.token),
                    json_escape(&v.excerpt)
                );
            }
            if rule.violations.is_empty() {
                out.push_str("],\n");
            } else {
                out.push_str("\n      ],\n");
            }
            out.push_str("      \"allowed\": [");
            for (j, a) in rule.allowed.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}\n        {{\"file\": \"{}\", \"line\": {}, \"token\": \"{}\", \"reason\": \"{}\"}}",
                    if j == 0 { "" } else { "," },
                    json_escape(&a.file),
                    a.line,
                    json_escape(&a.token),
                    json_escape(&a.reason)
                );
            }
            if rule.allowed.is_empty() {
                out.push_str("]\n");
            } else {
                out.push_str("\n      ]\n");
            }
            out.push_str(if i + 1 == self.rules.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the human-readable summary table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "radar-analyze: {} files scanned under {}",
            self.files_scanned, self.root
        );
        let width = self.rules.iter().map(|r| r.id.len()).max().unwrap_or(4);
        for rule in &self.rules {
            let status = if rule.violations.is_empty() {
                "PASS"
            } else {
                "FAIL"
            };
            let _ = writeln!(
                out,
                "  {status}  {:width$}  {:2} violation(s)  {:2} allowed  {}",
                rule.id,
                rule.violations.len(),
                rule.allowed.len(),
                rule.description,
            );
            for v in &rule.violations {
                let _ = writeln!(
                    out,
                    "        {}:{}  `{}`  {}",
                    v.file, v.line, v.token, v.excerpt
                );
            }
        }
        let _ = writeln!(out, "total violations: {}", self.total_violations());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AnalysisReport {
        AnalysisReport {
            root: "/ws".to_string(),
            files_scanned: 2,
            rules: vec![RuleSummary {
                id: "demo".to_string(),
                kind: "forbidden-tokens".to_string(),
                description: "d".to_string(),
                violations: vec![Finding {
                    file: "crates/x/src/lib.rs".to_string(),
                    line: 3,
                    token: "bad(".to_string(),
                    excerpt: "bad(\"quote \\\" inside\")".to_string(),
                }],
                allowed: vec![],
            }],
        }
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let json = sample().to_json();
        assert!(json.contains("\"total_violations\": 1"));
        assert!(json.contains("quote \\\\\\\" inside"));
        // Balanced braces/brackets — cheap structural sanity for the hand-rolled writer.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn table_marks_failing_rules() {
        let table = sample().render_table();
        assert!(table.contains("FAIL"));
        assert!(table.contains("crates/x/src/lib.rs:3"));
    }
}
