//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p radar-analyze [-- --root DIR] [--config FILE] [--json FILE] [--quiet]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` configuration or I/O error.

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Walks up from `start` to the first directory whose `Cargo.toml` declares a
/// `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

struct Args {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    json: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        config: None,
        json: None,
        quiet: false,
    };
    let mut it = env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut path_flag = |name: &str| {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} requires a path argument"))
        };
        match arg.as_str() {
            "--root" => args.root = Some(path_flag("--root")?),
            "--config" => args.config = Some(path_flag("--config")?),
            "--json" => args.json = Some(path_flag("--json")?),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "radar-analyze: workspace invariant linter\n\n\
                     USAGE: radar-analyze [--root DIR] [--config FILE] [--json FILE] [--quiet]\n\n\
                     Defaults: root = nearest [workspace] ancestor, config = <root>/crates/analyze/lints.toml,\n\
                     json = <root>/artifacts/results/ANALYZE.json.\n\
                     Exits 0 when clean, 1 on violations, 2 on config/I-O errors."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = match args.root {
        Some(root) => root,
        None => {
            let cwd = env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            find_workspace_root(&cwd).ok_or_else(|| {
                "no [workspace] Cargo.toml above the current directory".to_string()
            })?
        }
    };
    let config_path = args
        .config
        .unwrap_or_else(|| root.join("crates/analyze/lints.toml"));
    let json_path = args
        .json
        .unwrap_or_else(|| root.join("artifacts/results/ANALYZE.json"));

    let report = radar_analyze::analyze_with_config_file(&root, &config_path)?;

    if let Some(dir) = json_path.parent() {
        fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    fs::write(&json_path, report.to_json())
        .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;

    if !args.quiet {
        print!("{}", report.render_table());
        println!("report: {}", json_path.display());
    }
    Ok(report.clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(err) => {
            eprintln!("radar-analyze: error: {err}");
            ExitCode::from(2)
        }
    }
}
