//! Source discovery and token-level preprocessing.
//!
//! The scanner walks a workspace tree for `.rs` files (skipping `vendor/`,
//! `target/`, `artifacts/` and fixture trees), then preprocesses each file so rules
//! match against *code*, not prose:
//!
//! * comments (line, nested block) and string/char literal contents are blanked;
//! * every line is classified as inside or outside a `#[cfg(test)]` region;
//! * every line records its innermost enclosing named `fn`, for function-scoped
//!   rules.
//!
//! The preprocessing is a line-faithful transformation: `code_lines[i]` always
//! corresponds to `raw_lines[i]`, so reports can quote the original source.

use std::fs;
use std::path::{Path, PathBuf};

/// A scanned source file, preprocessed for rule matching.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with `/` separators (what rules match against).
    pub rel: String,
    /// Original source lines.
    pub raw_lines: Vec<String>,
    /// Source lines with comments and literal contents blanked.
    pub code_lines: Vec<String>,
    /// Per-line: inside a `#[cfg(test)]` region?
    pub in_test: Vec<bool>,
    /// Per-line: innermost enclosing named function at the start of the line.
    pub enclosing_fn: Vec<Option<String>>,
    /// Whether this file is a crate root (`src/lib.rs` or `src/main.rs`).
    pub is_crate_root: bool,
}

/// Directory names never descended into.
const SKIP_DIRS: [&str; 5] = ["vendor", "target", "artifacts", ".git", "fixtures"];

/// Recursively collects `.rs` files under `dir`, skipping [`SKIP_DIRS`].
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read entry in {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Blanks comments and string/char literal contents, preserving line structure.
///
/// Handles `//` line comments, nested `/* */` block comments, `"…"` strings with
/// escapes, raw strings `r"…"` / `r#"…"#` (any hash count), and char literals
/// (distinguished from lifetimes by lookahead). Blanked characters become spaces so
/// column positions stay stable.
fn strip_comments_and_strings(source: &str) -> String {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    let n = chars.len();
    let keep_newlines = |out: &mut String, slice: &[char]| {
        for &c in slice {
            out.push(if c == '\n' { '\n' } else { ' ' });
        }
    };
    while i < n {
        let c = chars[i];
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            keep_newlines(&mut out, &chars[start..i]);
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let mut depth = 0usize;
            while i < n {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    i += 1;
                }
            }
            keep_newlines(&mut out, &chars[start..i]);
            continue;
        }
        // Raw string: r"…" or r#…#"…"#…# (also br…).
        if (c == 'r' || (c == 'b' && i + 1 < n && chars[i + 1] == 'r')) && !prev_is_ident(&chars, i)
        {
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && chars[j] == '"' {
                out.push(c); // keep the prefix characters as-is
                if c == 'b' {
                    out.push('r');
                }
                for _ in 0..hashes {
                    out.push('#');
                }
                out.push('"');
                let start = j + 1;
                let mut k = start;
                'raw: while k < n {
                    if chars[k] == '"' {
                        let mut m = 0usize;
                        while m < hashes && k + 1 + m < n && chars[k + 1 + m] == '#' {
                            m += 1;
                        }
                        if m == hashes {
                            keep_newlines(&mut out, &chars[start..k]);
                            out.push('"');
                            for _ in 0..hashes {
                                out.push('#');
                            }
                            k += 1 + hashes;
                            break 'raw;
                        }
                    }
                    k += 1;
                }
                i = k;
                continue;
            }
        }
        // Plain (or byte) string.
        if c == '"' {
            out.push('"');
            let start = i + 1;
            let mut k = start;
            let mut escaped = false;
            while k < n {
                if escaped {
                    escaped = false;
                } else if chars[k] == '\\' {
                    escaped = true;
                } else if chars[k] == '"' {
                    break;
                }
                k += 1;
            }
            keep_newlines(&mut out, &chars[start..k.min(n)]);
            if k < n {
                out.push('"');
                k += 1;
            }
            i = k;
            continue;
        }
        // Char literal vs lifetime: '\…' or 'x' with a closing quote nearby.
        if c == '\'' {
            let is_char = if i + 1 < n && chars[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && chars[i + 2] == '\''
            };
            if is_char {
                out.push('\'');
                let mut k = i + 1;
                let mut escaped = false;
                while k < n {
                    if escaped {
                        escaped = false;
                    } else if chars[k] == '\\' {
                        escaped = true;
                    } else if chars[k] == '\'' {
                        break;
                    }
                    k += 1;
                }
                keep_newlines(&mut out, &chars[i + 1..k.min(n)]);
                if k < n {
                    out.push('\'');
                    k += 1;
                }
                i = k;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Extracts `(column, name)` for every `fn <name>` declaration in a code line.
fn fn_names_in(line: &str) -> Vec<(usize, String)> {
    let bytes = line.as_bytes();
    let mut found = Vec::new();
    let mut i = 0;
    while let Some(pos) = line[i..].find("fn ") {
        let at = i + pos;
        let boundary_ok = at == 0 || {
            let prev = bytes[at - 1] as char;
            !(prev.is_alphanumeric() || prev == '_')
        };
        if boundary_ok {
            let rest = line[at + 3..].trim_start();
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                found.push((at, name));
            }
        }
        i = at + 3;
    }
    found
}

/// Classifies lines into `#[cfg(test)]` regions and enclosing-function scopes with
/// a single brace-depth walk over the blanked code text.
fn classify(code_lines: &[String]) -> (Vec<bool>, Vec<Option<String>>) {
    let mut in_test = vec![false; code_lines.len()];
    let mut enclosing = vec![None; code_lines.len()];
    let mut depth: i64 = 0;
    // Depths (post-increment) at which a `#[cfg(test)]` block opened.
    let mut test_depths: Vec<i64> = Vec::new();
    // (depth, fn name) for every open named-fn brace.
    let mut fn_stack: Vec<(i64, Option<String>)> = Vec::new();
    let mut pending_test = false;
    let mut pending_fn: Option<String> = None;
    for (idx, line) in code_lines.iter().enumerate() {
        let started_in_test = !test_depths.is_empty();
        enclosing[idx] = fn_stack.iter().rev().find_map(|(_, name)| name.clone());
        if line.contains("#[cfg(test)]") {
            pending_test = true;
        }
        let mut names = fn_names_in(line).into_iter().peekable();
        for (col, c) in line.char_indices() {
            while names.peek().is_some_and(|(at, _)| *at <= col) {
                pending_fn = names.next().map(|(_, name)| name);
            }
            match c {
                '{' => {
                    depth += 1;
                    if pending_test {
                        test_depths.push(depth);
                        pending_test = false;
                    }
                    fn_stack.push((depth, pending_fn.take()));
                }
                '}' => {
                    while fn_stack.last().is_some_and(|(d, _)| *d >= depth) {
                        fn_stack.pop();
                    }
                    if test_depths.last() == Some(&depth) {
                        test_depths.pop();
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        // Remaining declarations on the line whose brace opens later.
        if let Some((_, name)) = names.next() {
            pending_fn = Some(name);
        }
        in_test[idx] = started_in_test || !test_depths.is_empty();
    }
    (in_test, enclosing)
}

/// Scans the workspace rooted at `root`, returning preprocessed source files in
/// deterministic (sorted-path) order.
pub fn scan_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut paths = Vec::new();
    collect_rs(root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let rel: String = path
            .strip_prefix(root)
            .map_err(|_| format!("{} escapes the root", path.display()))?
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let source = fs::read_to_string(&path).map_err(|e| format!("cannot read {rel}: {e}"))?;
        let code = strip_comments_and_strings(&source);
        let raw_lines: Vec<String> = source.lines().map(str::to_string).collect();
        let code_lines: Vec<String> = code.lines().map(str::to_string).collect();
        let (in_test, enclosing_fn) = classify(&code_lines);
        let is_crate_root = rel == "src/lib.rs"
            || rel == "src/main.rs"
            || (rel.starts_with("crates/")
                && (rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs"))
                && rel.matches('/').count() == 3);
        files.push(SourceFile {
            path,
            rel,
            raw_lines,
            code_lines,
            in_test,
            enclosing_fn,
            is_crate_root,
        });
    }
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_strings_and_char_literals_but_keeps_lifetimes() {
        let code = strip_comments_and_strings(
            "let a = \"Ordering::Relaxed\"; // Ordering::Relaxed\nlet b: &'a str = x; let c = '\\n'; let d = 'x';\n/* outer /* nested Ordering::Relaxed */ still comment */ real()",
        );
        assert!(!code.contains("Relaxed"));
        assert!(code.contains("&'a str"));
        assert!(code.contains("real()"));
        // Line structure preserved.
        assert_eq!(code.lines().count(), 3);
    }

    #[test]
    fn raw_strings_are_blanked_to_the_matching_hash_count() {
        let code = strip_comments_and_strings("let s = r#\"hidden \" quote\"# ; after()");
        assert!(!code.contains("hidden"));
        assert!(code.contains("after()"));
    }

    #[test]
    fn classify_marks_test_regions_and_function_extents() {
        let source = "fn hot() {\n    step();\n}\n#[cfg(test)]\nmod tests {\n    fn helper() { x(); }\n}\nfn after() { y(); }\n";
        let code = strip_comments_and_strings(source);
        let lines: Vec<String> = code.lines().map(str::to_string).collect();
        let (in_test, enclosing) = classify(&lines);
        assert!(!in_test[1], "hot body is not test code");
        assert!(in_test[5], "helper body is test code");
        assert!(!in_test[7], "code after the test module is live again");
        assert_eq!(enclosing[1].as_deref(), Some("hot"));
        assert_eq!(enclosing[0], None, "the fn line itself has outer scope");
    }
}
