//! A dependency-free parser for the TOML subset `lints.toml` uses.
//!
//! Supported grammar: `# comments`, `[[rule]]` / `[[rule.allow]]` array-of-tables
//! headers, and `key = value` pairs where a value is a quoted string (with `\"`,
//! `\\`, `\n` and `\t` escapes), a boolean, or an array of quoted strings that may
//! span multiple lines. That is everything the lint configuration needs; anything
//! else is a hard error so a typo cannot silently disable a rule.

use std::fmt;

/// What a rule checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    /// Listed tokens may not appear in scope at all (unless allowlisted).
    ForbiddenTokens,
    /// Listed tokens need an adjacent justification comment.
    JustifiedTokens,
    /// Every crate root must carry an attribute (or the manifest fallback).
    CrateAttr,
}

impl fmt::Display for RuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RuleKind::ForbiddenTokens => "forbidden-tokens",
            RuleKind::JustifiedTokens => "justified-tokens",
            RuleKind::CrateAttr => "crate-attr",
        })
    }
}

/// An allowlist entry: a scoped, *reasoned* exemption from its rule.
#[derive(Debug, Clone, Default)]
pub struct AllowEntry {
    /// Path substring the exemption applies to (unix-style, workspace-relative).
    pub file: String,
    /// Token the exemption applies to; empty means every token of the rule.
    pub token: String,
    /// Why the exemption is sound. Mandatory — enforced at parse time.
    pub reason: String,
}

/// One declared rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Stable identifier, used in reports and fixture names.
    pub id: String,
    /// What the rule checks.
    pub kind: RuleKind,
    /// Human-readable rationale, one line.
    pub description: String,
    /// Tokens to match (after comment/string stripping).
    pub tokens: Vec<String>,
    /// Path substrings restricting which files are in scope; empty = all files.
    pub files: Vec<String>,
    /// Enclosing-function names restricting matches; empty = anywhere.
    pub functions: Vec<String>,
    /// For [`RuleKind::JustifiedTokens`]: the comment marker that justifies a hit.
    pub justification: String,
    /// For [`RuleKind::CrateAttr`]: the attribute each crate root must carry.
    pub attr: String,
    /// For [`RuleKind::CrateAttr`]: a root-manifest line that satisfies the rule
    /// workspace-wide (the crate must also opt in with `[lints] workspace = true`).
    pub manifest_key: String,
    /// Whether `#[cfg(test)]` regions are exempt (default `true`).
    pub skip_tests: bool,
    /// Scoped, reasoned exemptions.
    pub allow: Vec<AllowEntry>,
}

impl Default for Rule {
    fn default() -> Self {
        Rule {
            id: String::new(),
            kind: RuleKind::ForbiddenTokens,
            description: String::new(),
            tokens: Vec::new(),
            files: Vec::new(),
            functions: Vec::new(),
            justification: String::new(),
            attr: String::new(),
            manifest_key: String::new(),
            skip_tests: true,
            allow: Vec::new(),
        }
    }
}

/// The whole lint configuration.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Rules, in declaration order.
    pub rules: Vec<Rule>,
}

/// One parsed `key = value` assignment.
enum Value {
    Str(String),
    List(Vec<String>),
    Bool(bool),
}

/// Strips a `#` comment that is outside any quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses one quoted string starting at `s` (which must begin with `"`); returns
/// the string and the rest of the input after the closing quote.
fn parse_string(s: &str, line_no: usize) -> Result<(String, &str), String> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => return Err(format!("line {line_no}: expected a quoted string")),
    }
    let mut escaped = false;
    for (i, c) in chars {
        if escaped {
            out.push(match c {
                'n' => '\n',
                't' => '\t',
                other => other, // covers \" and \\
            });
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Ok((out, &s[i + c.len_utf8()..]));
        } else {
            out.push(c);
        }
    }
    Err(format!("line {line_no}: unterminated string"))
}

/// Parses the elements of an array body (the text between `[` and `]`, possibly
/// accumulated across lines, with the brackets removed).
fn parse_list(body: &str, line_no: usize) -> Result<Vec<String>, String> {
    let mut items = Vec::new();
    let mut rest = body.trim_start();
    while !rest.is_empty() {
        let (item, after) = parse_string(rest, line_no)?;
        items.push(item);
        rest = after.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("line {line_no}: expected ',' between array items"));
        }
    }
    Ok(items)
}

fn parse_value(raw: &str, line_no: usize) -> Result<Value, String> {
    let raw = raw.trim();
    if raw == "true" {
        return Ok(Value::Bool(true));
    }
    if raw == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = raw.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| format!("line {line_no}: unterminated array"))?;
        return Ok(Value::List(parse_list(body, line_no)?));
    }
    if raw.starts_with('"') {
        let (s, rest) = parse_string(raw, line_no)?;
        if !rest.trim().is_empty() {
            return Err(format!("line {line_no}: trailing input after string"));
        }
        return Ok(Value::Str(s));
    }
    Err(format!("line {line_no}: unsupported value `{raw}`"))
}

#[derive(PartialEq)]
enum Section {
    Top,
    Rule,
    Allow,
}

/// Parses `lints.toml` text into a [`LintConfig`], validating that every rule is
/// well-formed and every allowlist entry carries a reason.
pub fn parse(text: &str) -> Result<LintConfig, String> {
    let mut config = LintConfig::default();
    let mut section = Section::Top;
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw_line)) = lines.next() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[rule]]" {
            config.rules.push(Rule::default());
            section = Section::Rule;
            continue;
        }
        if line == "[[rule.allow]]" {
            let rule = config
                .rules
                .last_mut()
                .ok_or_else(|| format!("line {line_no}: [[rule.allow]] before any [[rule]]"))?;
            rule.allow.push(AllowEntry::default());
            section = Section::Allow;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {line_no}: unsupported section `{line}`"));
        }
        let (key, mut value_text) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .ok_or_else(|| format!("line {line_no}: expected `key = value`"))?;
        // Multi-line array: accumulate until the closing bracket.
        if value_text.starts_with('[') && !value_text.ends_with(']') {
            for (_, more) in lines.by_ref() {
                let more = strip_comment(more).trim();
                value_text.push(' ');
                value_text.push_str(more);
                if more.ends_with(']') {
                    break;
                }
            }
        }
        let value = parse_value(&value_text, line_no)?;
        match section {
            Section::Top => {
                return Err(format!("line {line_no}: `{key}` outside any [[rule]]"));
            }
            Section::Rule => {
                let rule = config.rules.last_mut().expect("section implies a rule");
                assign_rule(rule, &key, value, line_no)?;
            }
            Section::Allow => {
                let entry = config
                    .rules
                    .last_mut()
                    .and_then(|r| r.allow.last_mut())
                    .expect("section implies an allow entry");
                assign_allow(entry, &key, value, line_no)?;
            }
        }
    }
    validate(&config)?;
    Ok(config)
}

fn expect_str(value: Value, key: &str, line_no: usize) -> Result<String, String> {
    match value {
        Value::Str(s) => Ok(s),
        _ => Err(format!("line {line_no}: `{key}` must be a string")),
    }
}

fn assign_rule(rule: &mut Rule, key: &str, value: Value, line_no: usize) -> Result<(), String> {
    match (key, value) {
        ("id", v) => rule.id = expect_str(v, key, line_no)?,
        ("kind", v) => {
            rule.kind = match expect_str(v, key, line_no)?.as_str() {
                "forbidden-tokens" => RuleKind::ForbiddenTokens,
                "justified-tokens" => RuleKind::JustifiedTokens,
                "crate-attr" => RuleKind::CrateAttr,
                other => return Err(format!("line {line_no}: unknown rule kind `{other}`")),
            }
        }
        ("description", v) => rule.description = expect_str(v, key, line_no)?,
        ("justification", v) => rule.justification = expect_str(v, key, line_no)?,
        ("attr", v) => rule.attr = expect_str(v, key, line_no)?,
        ("manifest_key", v) => rule.manifest_key = expect_str(v, key, line_no)?,
        ("tokens", Value::List(l)) => rule.tokens = l,
        ("files", Value::List(l)) => rule.files = l,
        ("functions", Value::List(l)) => rule.functions = l,
        ("skip_tests", Value::Bool(b)) => rule.skip_tests = b,
        (other, _) => {
            return Err(format!(
                "line {line_no}: unknown or mistyped rule key `{other}`"
            ))
        }
    }
    Ok(())
}

fn assign_allow(
    entry: &mut AllowEntry,
    key: &str,
    value: Value,
    line_no: usize,
) -> Result<(), String> {
    match key {
        "file" => entry.file = expect_str(value, key, line_no)?,
        "token" => entry.token = expect_str(value, key, line_no)?,
        "reason" => entry.reason = expect_str(value, key, line_no)?,
        other => return Err(format!("line {line_no}: unknown allow key `{other}`")),
    }
    Ok(())
}

fn validate(config: &LintConfig) -> Result<(), String> {
    if config.rules.is_empty() {
        return Err("config declares no rules".to_string());
    }
    for rule in &config.rules {
        if rule.id.is_empty() {
            return Err("a rule is missing its `id`".to_string());
        }
        match rule.kind {
            RuleKind::ForbiddenTokens | RuleKind::JustifiedTokens => {
                if rule.tokens.is_empty() {
                    return Err(format!("rule `{}` declares no tokens", rule.id));
                }
                if rule.kind == RuleKind::JustifiedTokens && rule.justification.is_empty() {
                    return Err(format!("rule `{}` is missing `justification`", rule.id));
                }
            }
            RuleKind::CrateAttr => {
                if rule.attr.is_empty() {
                    return Err(format!("rule `{}` is missing `attr`", rule.id));
                }
            }
        }
        for entry in &rule.allow {
            if entry.file.is_empty() {
                return Err(format!("rule `{}`: allow entry without `file`", rule.id));
            }
            if entry.reason.trim().is_empty() {
                return Err(format!(
                    "rule `{}`: allow entry for `{}` has no `reason` — every exemption must say why it is sound",
                    rule.id, entry.file
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_allow_entries_and_multiline_arrays() {
        let config = parse(
            r#"
# comment
[[rule]]
id = "demo"
kind = "justified-tokens"
description = "d # not a comment inside a string"
tokens = [
    "Ordering::Relaxed", # trailing comment
    "escaped \" quote",
]
justification = "// relaxed:"
skip_tests = false

[[rule.allow]]
file = "crates/x"
reason = "because"
"#,
        )
        .expect("parses");
        assert_eq!(config.rules.len(), 1);
        let rule = &config.rules[0];
        assert_eq!(rule.kind, RuleKind::JustifiedTokens);
        assert_eq!(rule.tokens, ["Ordering::Relaxed", "escaped \" quote"]);
        assert!(!rule.skip_tests);
        assert!(rule.description.contains("# not a comment"));
        assert_eq!(rule.allow[0].reason, "because");
    }

    #[test]
    fn reasonless_allow_entries_are_config_errors() {
        let err = parse(
            r#"
[[rule]]
id = "demo"
kind = "forbidden-tokens"
tokens = ["x"]

[[rule.allow]]
file = "crates/x"
"#,
        )
        .expect_err("must reject");
        assert!(err.contains("no `reason`"), "got: {err}");
    }

    #[test]
    fn unknown_keys_and_kinds_are_rejected() {
        assert!(parse("[[rule]]\nid = \"a\"\nkind = \"nope\"\ntokens=[\"x\"]").is_err());
        assert!(parse("[[rule]]\nid = \"a\"\nbogus = \"x\"\ntokens=[\"x\"]").is_err());
        assert!(parse("stray = \"x\"").is_err());
    }
}
