//! `radar-analyze`: a dependency-free workspace invariant linter.
//!
//! The compiler proves memory safety; the test suite proves behavior on the
//! schedules it happens to run. This crate enforces the *project* invariants that
//! sit between those two — properties that are easy to state, easy to silently
//! erode in review, and catastrophic to lose:
//!
//! * **hot-path purity** — the serve fetch/verify/recover paths stay
//!   quantized-native (no `dequantize()`, no float-shadow sync) and the per-batch
//!   verify/scrub steps stay allocation-free;
//! * **determinism** — no ambient entropy or wall-clock in logical paths, so runs
//!   replay from seeds (telemetry and benches are allowlisted *with reasons*);
//! * **atomics discipline** — every `Ordering::Relaxed` carries a `// relaxed:`
//!   justification, and the serve sync protocol's ticket/barrier atomics may not
//!   use `Relaxed` at all;
//! * **no `unsafe`** — every crate root forbids it (attribute or workspace lint
//!   table), and serve worker loops don't `unwrap`/`expect`.
//!
//! Rules are declared in `crates/analyze/lints.toml` and documented in
//! `docs/ANALYSIS.md`. Matching is token-level on comment- and string-stripped
//! source — deliberately not a full parser: the rules are chosen so that a
//! substring hit is (modulo the reasoned allowlist) a real violation, and the
//! zero-dependency scanner stays trivially auditable and fast enough for CI.
//!
//! The binary (`cargo run -p radar-analyze`) scans the workspace, prints a table,
//! writes `artifacts/results/ANALYZE.json` and exits nonzero on violations.

pub mod config;
pub mod report;
pub mod rules;
pub mod scan;

use std::fs;
use std::path::Path;

pub use config::{parse, LintConfig};
pub use report::AnalysisReport;

/// Runs the full analysis: scans `.rs` sources under `root` and evaluates `config`.
///
/// # Errors
///
/// Returns an error when the tree cannot be read.
pub fn analyze(root: &Path, config: &LintConfig) -> Result<AnalysisReport, String> {
    let files = scan::scan_workspace(root)?;
    Ok(rules::evaluate(root, config, &files))
}

/// [`analyze`] with the configuration loaded from `config_path`.
///
/// # Errors
///
/// Returns an error when the config cannot be read or parsed, or the tree cannot
/// be scanned.
pub fn analyze_with_config_file(root: &Path, config_path: &Path) -> Result<AnalysisReport, String> {
    let text = fs::read_to_string(config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let config = config::parse(&text)?;
    analyze(root, &config)
}
