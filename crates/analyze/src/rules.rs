//! Rule evaluation over scanned sources.

use std::fs;
use std::path::Path;

use crate::config::{LintConfig, Rule, RuleKind};
use crate::report::{AllowedHit, AnalysisReport, Finding, RuleSummary};
use crate::scan::SourceFile;

/// Whether `rule` applies to the file at `rel` (empty `files` = every file).
fn file_in_scope(rule: &Rule, rel: &str) -> bool {
    rule.files.is_empty() || rule.files.iter().any(|f| rel.contains(f.as_str()))
}

/// Returns the matching allowlist reason, if any.
fn allowed_reason<'a>(rule: &'a Rule, rel: &str, token: &str) -> Option<&'a str> {
    rule.allow
        .iter()
        .find(|a| rel.contains(a.file.as_str()) && (a.token.is_empty() || a.token == token))
        .map(|a| a.reason.as_str())
}

/// Whether the token hit at `line_idx` carries a justification marker: on the same
/// raw line, or above it across an immediately preceding run of comment lines,
/// further token lines (one comment may cover a contiguous block of identical
/// operations) or statement continuations (a multi-line expression counts as one
/// statement — the comment sits above its first line).
fn justified(file: &SourceFile, line_idx: usize, token: &str, marker: &str) -> bool {
    let mut j = line_idx;
    loop {
        if file.raw_lines[j].contains(marker) {
            return true;
        }
        if j == 0 {
            return false;
        }
        let prev_raw = file.raw_lines[j - 1].trim();
        let prev_terminates = prev_raw.is_empty()
            || prev_raw.ends_with(';')
            || prev_raw.ends_with('{')
            || prev_raw.ends_with('}');
        if prev_raw.starts_with("//") || file.code_lines[j - 1].contains(token) || !prev_terminates
        {
            j -= 1;
        } else {
            return false;
        }
    }
}

fn eval_token_rule(rule: &Rule, file: &SourceFile, summary: &mut RuleSummary) {
    for (idx, code_line) in file.code_lines.iter().enumerate() {
        if rule.skip_tests && file.in_test[idx] {
            continue;
        }
        for token in &rule.tokens {
            if !code_line.contains(token.as_str()) {
                continue;
            }
            if !rule.functions.is_empty() {
                let in_scope = file.enclosing_fn[idx]
                    .as_deref()
                    .is_some_and(|name| rule.functions.iter().any(|f| f == name));
                if !in_scope {
                    continue;
                }
            }
            if rule.kind == RuleKind::JustifiedTokens
                && justified(file, idx, token, &rule.justification)
            {
                continue;
            }
            let excerpt = file.raw_lines[idx].trim().to_string();
            if let Some(reason) = allowed_reason(rule, &file.rel, token) {
                summary.allowed.push(AllowedHit {
                    file: file.rel.clone(),
                    line: idx + 1,
                    token: token.clone(),
                    reason: reason.to_string(),
                });
            } else {
                summary.violations.push(Finding {
                    file: file.rel.clone(),
                    line: idx + 1,
                    token: token.clone(),
                    excerpt,
                });
            }
        }
    }
}

/// Whether the crate owning `root_file` opts into the workspace lint table that
/// satisfies `rule` (its manifest says `[lints] workspace = true` and the workspace
/// root manifest carries the rule's `manifest_key` line).
fn manifest_satisfies(rule: &Rule, workspace_root: &Path, file: &SourceFile) -> bool {
    if rule.manifest_key.is_empty() {
        return false;
    }
    let crate_manifest = match file.path.parent().and_then(Path::parent) {
        Some(crate_dir) => crate_dir.join("Cargo.toml"),
        None => return false,
    };
    let crate_toml = fs::read_to_string(&crate_manifest).unwrap_or_default();
    let opted_in = crate_toml.contains("[lints]")
        && crate_toml
            .lines()
            .any(|l| l.trim().starts_with("workspace") && l.contains("true"));
    if !opted_in {
        return false;
    }
    let root_toml = fs::read_to_string(workspace_root.join("Cargo.toml")).unwrap_or_default();
    root_toml.contains(rule.manifest_key.as_str())
}

fn eval_crate_attr_rule(
    rule: &Rule,
    workspace_root: &Path,
    files: &[SourceFile],
    summary: &mut RuleSummary,
) {
    for file in files.iter().filter(|f| f.is_crate_root) {
        if !file_in_scope(rule, &file.rel) {
            continue;
        }
        let has_attr = file.raw_lines.iter().any(|l| l.contains(&rule.attr));
        if has_attr || manifest_satisfies(rule, workspace_root, file) {
            continue;
        }
        if let Some(reason) = allowed_reason(rule, &file.rel, &rule.attr) {
            summary.allowed.push(AllowedHit {
                file: file.rel.clone(),
                line: 1,
                token: rule.attr.clone(),
                reason: reason.to_string(),
            });
        } else {
            summary.violations.push(Finding {
                file: file.rel.clone(),
                line: 1,
                token: rule.attr.clone(),
                excerpt: format!(
                    "crate root lacks `{}` and its manifest does not opt into the workspace lint table",
                    rule.attr
                ),
            });
        }
    }
}

/// Evaluates every rule of `config` over `files`, producing the full report.
pub fn evaluate(
    workspace_root: &Path,
    config: &LintConfig,
    files: &[SourceFile],
) -> AnalysisReport {
    let mut rules = Vec::with_capacity(config.rules.len());
    for rule in &config.rules {
        let mut summary = RuleSummary {
            id: rule.id.clone(),
            kind: rule.kind.to_string(),
            description: rule.description.clone(),
            violations: Vec::new(),
            allowed: Vec::new(),
        };
        match rule.kind {
            RuleKind::ForbiddenTokens | RuleKind::JustifiedTokens => {
                for file in files.iter().filter(|f| file_in_scope(rule, &f.rel)) {
                    eval_token_rule(rule, file, &mut summary);
                }
            }
            RuleKind::CrateAttr => eval_crate_attr_rule(rule, workspace_root, files, &mut summary),
        }
        rules.push(summary);
    }
    AnalysisReport {
        root: workspace_root.display().to_string(),
        files_scanned: files.len(),
        rules,
    }
}
