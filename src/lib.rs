//! Workspace-level façade for the RADAR reproduction.
//!
//! This crate simply re-exports the sub-crates so the runnable examples and the
//! cross-crate integration tests can use one coherent namespace. See the README for an
//! overview and `DESIGN.md` for the system inventory.
//!
//! # Example
//!
//! ```
//! use radar_repro::core::{RadarConfig, RadarProtection};
//! use radar_repro::nn::{resnet20, ResNetConfig};
//! use radar_repro::quant::QuantizedModel;
//!
//! let model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(10))));
//! let radar = RadarProtection::new(&model, RadarConfig::paper_default(64));
//! assert!(radar.storage_bytes() > 0);
//!
//! // Signing compiled a streaming verification plan; the fetch path verifies one
//! // layer at a time through it.
//! assert_eq!(radar.plan().num_layers(), model.num_layers());
//! assert!(!radar.verify_layer(&model, 0).attack_detected());
//! ```

pub use radar_archsim as archsim;
pub use radar_attack as attack;
pub use radar_core as core;
pub use radar_data as data;
pub use radar_integrity as integrity;
pub use radar_memsim as memsim;
pub use radar_nn as nn;
pub use radar_quant as quant;
pub use radar_serve as serve;
pub use radar_tensor as tensor;
