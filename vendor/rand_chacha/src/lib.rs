//! A dependency-free vendored subset of the `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`]: a genuine ChaCha block function with 8 double
//! rounds (matching the upstream stream layout closely enough for this
//! workspace's purposes — every consumer seeds explicitly and only relies on
//! determinism, not on bit-compatibility with upstream).

#![forbid(unsafe_code)]

pub use rand::{RngCore, SeedableRng};

pub mod rand_core {
    //! Re-export of the core RNG traits, mirroring `rand_chacha::rand_core`.
    pub use rand::{RngCore, SeedableRng};
}

/// The ChaCha stream cipher with 8 double rounds, used as a deterministic RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 total double rounds = 4 iterations of (column round, diagonal round) x2.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn blocks_change_with_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn usable_through_rand_traits() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v: f32 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&v));
    }
}
