//! A dependency-free vendored subset of the `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`] and [`ChaCha20Rng`]: genuine ChaCha block functions
//! with 8 and 20 rounds respectively (matching the upstream stream layout
//! closely enough for this workspace's purposes — every consumer seeds
//! explicitly and only relies on determinism, not on bit-compatibility with
//! upstream). `ChaCha20Rng` is the variant used for key derivation: its seed
//! is an HMAC-SHA256 output, and the extra rounds are the standard margin for
//! secret-keyed use.

#![forbid(unsafe_code)]

pub use rand::{RngCore, SeedableRng};

pub mod rand_core {
    //! Re-export of the core RNG traits, mirroring `rand_chacha::rand_core`.
    pub use rand::{RngCore, SeedableRng};
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One keystream block: `double_rounds` iterations of (column round, diagonal
/// round) over a working copy of `state`, then the feed-forward add.
#[inline]
fn chacha_block(state: &[u32; 16], block: &mut [u32; 16], double_rounds: usize) {
    let mut working = *state;
    for _ in 0..double_rounds {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    for (out, (&w, &s)) in block.iter_mut().zip(working.iter().zip(state.iter())) {
        *out = w.wrapping_add(s);
    }
}

macro_rules! chacha_rng {
    ($(#[$doc:meta])* $name:ident, $double_rounds:expr) => {
        $(#[$doc])*
        #[derive(Clone, Debug)]
        pub struct $name {
            /// Cipher input block: constants, key, counter, nonce.
            state: [u32; 16],
            /// Current keystream block.
            block: [u32; 16],
            /// Next unread word in `block`; 16 means "exhausted".
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                chacha_block(&self.state, &mut self.block, $double_rounds);
                // 64-bit block counter in words 12..14.
                let (lo, carry) = self.state[12].overflowing_add(1);
                self.state[12] = lo;
                if carry {
                    self.state[13] = self.state[13].wrapping_add(1);
                }
                self.index = 0;
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let word = self.block[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                (hi << 32) | lo
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut state = [0u32; 16];
                state[..4].copy_from_slice(&CHACHA_CONSTANTS);
                for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
                    *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                }
                // Counter and nonce start at zero.
                $name {
                    state,
                    block: [0; 16],
                    index: 16,
                }
            }
        }
    };
}

chacha_rng!(
    /// The ChaCha stream cipher with 8 rounds (4 double rounds), used as a
    /// fast deterministic RNG.
    ChaCha8Rng,
    4
);
chacha_rng!(
    /// The ChaCha stream cipher with the full 20 rounds (10 double rounds).
    ///
    /// Used where the seed is secret key material (the HMAC-derived per-layer
    /// key schedule in `radar-core`); prefer [`ChaCha8Rng`] for plain
    /// simulation randomness.
    ChaCha20Rng,
    10
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn blocks_change_with_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn usable_through_rand_traits() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v: f32 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn chacha20_is_deterministic_and_differs_from_chacha8() {
        let seed = [7u8; 32];
        let mut a = ChaCha20Rng::from_seed(seed);
        let mut b = ChaCha20Rng::from_seed(seed);
        let mut c = ChaCha8Rng::from_seed(seed);
        let words_a: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let words_b: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        let words_c: Vec<u32> = (0..64).map(|_| c.next_u32()).collect();
        assert_eq!(words_a, words_b);
        // The extra 12 rounds must actually run: same seed, different stream.
        assert_ne!(words_a, words_c);
    }

    #[test]
    fn chacha20_seeds_differ() {
        let mut a = ChaCha20Rng::from_seed([0u8; 32]);
        let mut b = ChaCha20Rng::from_seed([1u8; 32]);
        assert_ne!(
            (0..16).map(|_| a.next_u32()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u32()).collect::<Vec<_>>()
        );
    }
}
