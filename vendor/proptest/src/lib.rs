//! A small, deterministic, dependency-free subset of the `proptest` API.
//!
//! The build environment is offline, so the real `proptest` cannot be fetched.
//! This vendored stand-in keeps the same surface the workspace's property
//! tests use — the [`proptest!`] macro, `prop_assert*` / [`prop_assume!`],
//! [`strategy::Strategy`] with `prop_flat_map`/`prop_map`, [`strategy::Just`],
//! [`arbitrary::any`], `prop::collection::vec`, `prop::sample::Index`, range
//! and tuple strategies — but with a simplified runner:
//!
//! - every test runs a fixed number of random cases from a seed derived from
//!   the test name (fully deterministic run to run);
//! - there is no shrinking: a failing case panics with the generated inputs
//!   printed, which is enough to reproduce since generation is deterministic.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    impl<T: rand::distributions::SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

pub mod arbitrary {
    //! The [`any`] entry point: the canonical strategy for a type.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! arbitrary_prim {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }

    arbitrary_prim!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize, bool, f32, f64);

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            crate::sample::Index::from_raw(rng.gen())
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy covering the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A vector-length specification: either an exact size or a half-open
    /// range of sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange(exact..exact + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "collection::vec: empty size range");
            SizeRange(range)
        }
    }

    /// Strategy for `Vec<T>` with a size drawn from a [`SizeRange`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.0.len() == 1 {
                self.size.0.start
            } else {
                rng.gen_range(self.size.0.start..self.size.0.end)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    /// An abstract index into a collection whose length is unknown at
    /// generation time: resolved against a concrete length with
    /// [`Index::index`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Builds an index from raw entropy.
        pub fn from_raw(raw: usize) -> Self {
            Index(raw)
        }

        /// Resolves against a collection of `len` elements. Panics if
        /// `len == 0`, matching upstream behaviour.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            self.0 % len
        }
    }
}

pub mod test_runner {
    //! The deterministic case runner behind [`proptest!`](crate::proptest).

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject(String),
        /// A `prop_assert*` failed; abort the whole test.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection with a reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Per-case outcome.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// How many accepted cases each property runs.
    pub const CASES: u64 = 64;

    /// Rejection budget: give up (and pass vacuously-failing-loudly) if
    /// assumptions filter out too much of the space.
    const MAX_ATTEMPTS: u64 = CASES * 32;

    fn fnv1a(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Runs `case` until [`CASES`] inputs have been accepted, panicking on the
    /// first failure with the generated inputs included in the message.
    pub fn run(name: &str, case: impl Fn(&mut StdRng, &mut Vec<String>) -> TestCaseResult) {
        let base = fnv1a(name);
        let mut accepted = 0u64;
        let mut attempts = 0u64;
        while accepted < CASES {
            attempts += 1;
            assert!(
                attempts <= MAX_ATTEMPTS,
                "property `{name}`: too many prop_assume! rejections \
                 ({accepted}/{CASES} cases accepted after {MAX_ATTEMPTS} attempts)"
            );
            let mut rng = StdRng::seed_from_u64(base.wrapping_add(attempts));
            let mut inputs = Vec::new();
            match case(&mut rng, &mut inputs) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => panic!(
                    "property `{name}` failed on case seed {seed}: {msg}\n\
                     generated inputs (in declaration order):\n{inputs}",
                    seed = base.wrapping_add(attempts),
                    inputs = inputs.join("\n"),
                ),
            }
        }
    }
}

/// Defines property tests: `#[test]` functions whose arguments are drawn from
/// strategies via `pattern in strategy` clauses.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    stringify!($name),
                    |__proptest_rng, __proptest_inputs| -> $crate::test_runner::TestCaseResult {
                        $(
                            let __proptest_value =
                                $crate::strategy::Strategy::generate(&($strat), __proptest_rng);
                            __proptest_inputs.push(format!(
                                "  {} = {:?}",
                                stringify!($pat),
                                __proptest_value
                            ));
                            let $pat = __proptest_value;
                        )*
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)*),
                    __l,
                    __r
                );
            }
        }
    };
}

/// Fails the current case unless the two values are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "{}\n  both: {:?}",
                    format!($($fmt)*),
                    __l
                );
            }
        }
    };
}

/// Rejects the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

pub mod prelude {
    //! Everything a property-test file needs, in one glob import.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10).prop_flat_map(|n| (Just(n), 0usize..10))
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(0u8..255, 4..9)) {
            prop_assert!((4..9).contains(&v.len()));
        }

        #[test]
        fn index_resolves_in_bounds(
            v in prop::collection::vec(any::<i8>(), 1..50),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(idx.index(v.len()) < v.len());
        }

        #[test]
        fn flat_map_threads_values(
            (n, m) in pair(),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(m < 10);
        }

        #[test]
        fn assume_filters_cases(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
