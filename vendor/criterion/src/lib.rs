//! A minimal, dependency-free subset of the `criterion` benchmarking API.
//!
//! The build environment is offline, so the real `criterion` cannot be
//! fetched. This vendored stand-in compiles the workspace's `harness = false`
//! bench targets unchanged and actually runs them: each benchmark is timed
//! with `std::time::Instant` over `sample_size` samples and the median
//! per-iteration time is printed. There are no plots, no statistics beyond
//! the median, and no baseline storage — restore the registry dependency to
//! get the real analysis back.
//!
//! Like the real criterion, passing `--test` on the bench binary's command
//! line (`cargo bench -- --test`) runs every benchmark exactly once as a
//! smoke test instead of timing it — that is what CI uses to keep bench
//! targets from bit-rotting unbuilt.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { id: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

/// How `iter_batched` amortises setup cost. Only a hint here.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to every benchmark closure; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter`/`iter_batched` call.
    elapsed: Duration,
}

impl Bencher {
    fn sample_times(&mut self, mut one_iteration: impl FnMut() -> Duration) {
        let mut times: Vec<Duration> = (0..self.samples).map(|_| one_iteration()).collect();
        times.sort_unstable();
        self.elapsed = times[times.len() / 2];
    }

    /// Times `routine`, called once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.sample_times(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` on fresh inputs built by `setup` (setup time excluded).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.sample_times(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; this harness keys off sample count.
    pub fn measurement_time(self, _dur: Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&id.id, self.sample_size, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.criterion.sample_size, f);
        self
    }

    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (All output is printed eagerly.)
    pub fn finish(self) {}
}

/// Whether the binary was invoked in `--test` smoke mode (`cargo bench -- --test`).
fn test_mode() -> bool {
    std::env::args().skip(1).any(|arg| arg == "--test")
}

fn run_one(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let samples = if test_mode() { 1 } else { samples };
    let mut bencher = Bencher {
        samples,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if test_mode() {
        println!("test bench: {id:<50} ... ok (1 iteration)");
    } else {
        println!(
            "bench: {id:<50} median {:>12.1?} over {samples} samples",
            bencher.elapsed
        );
    }
}

/// Collects benchmark functions into a runnable group, in both the plain and
/// the `name = ...; config = ...; targets = ...` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Generates `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        (1..n)
            .fold((0u64, 1u64), |(a, b), _| (b, a.wrapping_add(b)))
            .1
    }

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("fib_20", |b| b.iter(|| fib(black_box(20))));
    }

    #[test]
    fn groups_and_batched_iter_run() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("group");
        g.bench_function("plain", |b| b.iter(|| fib(black_box(10))));
        g.bench_with_input(BenchmarkId::from_parameter(12u64), &12u64, |b, &n| {
            b.iter(|| fib(black_box(n)))
        });
        g.bench_function(BenchmarkId::new("named", 13), |b| {
            b.iter_batched(|| 13u64, fib, BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(plain_form, sample_target);
    criterion_group! {
        name = config_form;
        config = Criterion::default().sample_size(2);
        targets = sample_target
    }

    fn sample_target(c: &mut Criterion) {
        c.bench_function("macro_target", |b| b.iter(|| fib(black_box(8))));
    }

    #[test]
    fn macro_forms_produce_runnable_groups() {
        plain_form();
        config_form();
    }
}
