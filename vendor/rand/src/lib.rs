//! A small, dependency-free, deterministic subset of the `rand` crate API.
//!
//! The build environment for this workspace is fully offline, so the real
//! `rand` crate cannot be fetched from crates.io. This vendored stand-in
//! implements exactly the surface the RADAR reproduction uses:
//!
//! - [`RngCore`] / [`SeedableRng`] / [`Rng`] (with `gen`, `gen_range`,
//!   `gen_bool`)
//! - [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 — *not* the same
//!   stream as upstream `StdRng`, but every use in this workspace seeds
//!   explicitly with `seed_from_u64`, so results are deterministic within the
//!   workspace)
//! - [`distributions::Standard`], [`distributions::Uniform`]
//! - [`seq::SliceRandom::shuffle`]
//!
//! Swapping the real crate back in only requires restoring the registry
//! dependency; no call sites need to change.

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type, a fixed-size byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 exactly
    /// like upstream `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: used for seed expansion and as the guts of seeding.
#[derive(Clone, Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    ///
    /// Upstream `StdRng` is a ChaCha block cipher; this stand-in trades the
    /// cryptographic stream for zero dependencies while keeping the same API
    /// and full determinism under `seed_from_u64`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod distributions {
    //! Sampling distributions: `Standard` and half-open `Uniform`.

    use super::RngCore;
    use std::ops::Range;

    /// Types that can produce values of `T` given a source of randomness.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: uniform over its whole domain
    /// for integers, uniform in `[0, 1)` for floats.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty => $via:ident),* $(,)?) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$via() as $t
                }
            }
        )*};
    }

    standard_int!(
        u8 => next_u32, i8 => next_u32, u16 => next_u32, i16 => next_u32,
        u32 => next_u32, i32 => next_u32, u64 => next_u64, i64 => next_u64,
        usize => next_u64, isize => next_u64,
    );

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Types that `Uniform` and `gen_range` can sample.
    pub trait SampleUniform: PartialOrd + Copy {
        /// Draws uniformly from `[low, high)`. Panics if the range is empty.
        fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    macro_rules! sample_uniform_int {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let span = (high as i128 - low as i128) as u128;
                    let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (low as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    sample_uniform_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

    macro_rules! sample_uniform_float {
        ($($t:ty => $unit:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let unit: $t = Standard.sample(rng);
                    let v = low + (high - low) * unit;
                    // Floating-point rounding can land exactly on `high`.
                    if v >= high { low } else { v }
                }
            }
        )*};
    }

    sample_uniform_float!(f32 => f32, f64 => f64);

    /// A uniform distribution over a half-open range, reusable across draws.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T: SampleUniform> {
        low: T,
        high: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Creates a sampler for `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new: empty range");
            Uniform { low, high }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_range(rng, self.low, self.high)
        }
    }

    /// Range arguments accepted by [`Rng::gen_range`](super::Rng::gen_range).
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_range(rng, self.start, self.end)
        }
    }
}

pub mod seq {
    //! Slice helpers: shuffling and random selection.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn uniform_distribution_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let dist = Uniform::new(-1.0f32, 1.0);
        for _ in 0..1000 {
            let v = dist.sample(&mut rng);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(13);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }
}
